package bench

import (
	"fmt"
	"math"

	"repro/internal/arb"
	"repro/internal/baseline"
	"repro/internal/coloring"
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/oldc"
	"repro/internal/seq"
	"repro/internal/sim"
)

// E5 — Theorem 1.3: d-arbdefective ⌊Δ/(d+1)+1⌋-colorings, our driver vs
// the O(Δ/(d+1) + log* n) baseline [BEG18-style bootstrap].
func (s Suite) E5() (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "Arbdefective coloring: Theorem 1.3 driver vs baselines",
		Claim:  "Theorem 1.3: d-arbdefective ⌊Δ/(d+1)+1⌋-coloring in O(√(Δ/(d+1))·polylog) rounds vs O(Δ + log* n) exact [BBKO21] and O(Δ/d) relaxed [BEG18]",
		Header: []string{"Δ", "d", "q colors", "ours rounds", "exact[BBKO21]", "relaxed[BEG18]", "ours valid"},
	}
	deltas := s.pick([]int{16}, []int{16, 24, 40})
	for _, delta := range deltas {
		n := 8 * delta
		g := graph.RandomRegular(n, delta, 51)
		eng := sim.NewEngine(g)
		init, m, _, err := linial.Proper(eng, graph.OrientSymmetric(g), linial.IDs(g.N()), g.N())
		if err != nil {
			return nil, err
		}
		ds := s.pick([]int{0, 1, 3}, []int{0, 1, 3, 7})
		for _, d := range ds {
			q := delta/(d+1) + 1
			// Instance: every node has the q-color list with defect d
			// (Σ(d+1) = q(d+1) > Δ).
			cols := make([]int, q)
			defs := make([]int, q)
			for i := range cols {
				cols[i] = i
				defs[i] = d
			}
			in := &coloring.Instance{G: g, SpaceSize: q, Lists: make([]coloring.NodeList, n)}
			for v := range in.Lists {
				in.Lists[v] = coloring.NodeList{Colors: append([]int(nil), cols...), Defect: append([]int(nil), defs...)}
			}
			res, err := arb.SolveListArbdefective(g, in, init, m, oldc.Solve, arb.Config{})
			if err != nil {
				return nil, fmt.Errorf("E5 Δ=%d d=%d: %w", delta, d, err)
			}
			valid := coloring.CheckArb(in, res.Phi, res.Orient) == nil
			// Exact-defect baseline: O(Δ + log* n) class-by-class greedy.
			_, _, exactStats, err := baseline.ExactArbdefective(sim.NewEngine(g), g, q, d)
			if err != nil {
				return nil, fmt.Errorf("E5 exact baseline Δ=%d d=%d: %w", delta, d, err)
			}
			// Relaxed baseline: the [BEG18]-style bootstrap alone
			// (arbdefect O(Δ/q) rather than exactly d).
			_, bootStats, err := linial.Arbdefective(sim.NewEngine(g), g, linial.IDs(n), n, q)
			if err != nil {
				return nil, fmt.Errorf("E5 relaxed baseline Δ=%d d=%d: %w", delta, d, err)
			}
			t.AddRow(delta, d, q, res.Stats.Rounds, exactStats.Rounds, bootStats.Rounds, valid)
		}
	}
	t.Notes = append(t.Notes,
		"the exact baseline meets defect d but pays Θ(Δ) rounds; the relaxed one is fast but only guarantees arbdefect O(Δ/q)",
		"ours meets the exact defect d; its rounds scale with √(Δ/(d+1))·polylog instead of Δ")
	return t, nil
}

// E6 — Theorem 1.4: deterministic CONGEST (Δ+1)-coloring in
// √Δ·polylog Δ + O(log* n) rounds with O(log n)-bit messages, against the
// O(Δ+log* n) and O(Δ²) deterministic baselines, randomized Luby, and the
// GK21 round formula.
func (s Suite) E6() (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "(Δ+1)-coloring round complexity across algorithms",
		Claim: "Theorem 1.4: √Δ·polylog Δ + O(log* n) CONGEST rounds, filling the Δ ∈ [ω(log n), o(log²n)] gap",
		Header: []string{"Δ", "n", "ours", "ours/√Δ", "ours r=2", "r=2 bits", "linear[BEG18]", "slow[Lin87]",
			"dc[BE09]", "Luby(rand)", "GK21 model", "ours max bits", "log n"},
	}
	deltas := s.pick([]int{6, 12}, []int{6, 12, 20, 32, 48})
	for _, delta := range deltas {
		n := 8 * delta
		if n*delta%2 != 0 {
			n++
		}
		g := graph.RandomRegular(n, delta, int64(delta)*7)

		ours, err := congest.DeltaPlusOne(g, congest.Config{})
		if err != nil {
			return nil, fmt.Errorf("E6 Δ=%d: %w", delta, err)
		}
		if err := coloring.CheckProper(g, ours.Phi, delta+1); err != nil {
			return nil, err
		}
		oursCSR, err := congest.DeltaPlusOne(g, congest.Config{CSRDepth: 2})
		if err != nil {
			return nil, fmt.Errorf("E6 csr Δ=%d: %w", delta, err)
		}
		if err := coloring.CheckProper(g, oursCSR.Phi, delta+1); err != nil {
			return nil, err
		}
		_, lin, err := baseline.LinearDeltaPlusOne(sim.NewEngine(g), g)
		if err != nil {
			return nil, err
		}
		_, slow, err := baseline.SlowFold(sim.NewEngine(g), g)
		if err != nil {
			return nil, err
		}
		_, dc, err := baseline.DivideConquer(g)
		if err != nil {
			return nil, err
		}
		_, luby, err := baseline.Luby(sim.NewEngine(g), g, 99)
		if err != nil {
			return nil, err
		}
		logn := intLog2Ceil(n)
		t.AddRow(delta, n, ours.Stats.Rounds,
			float64(ours.Stats.Rounds)/math.Sqrt(float64(delta)),
			oursCSR.Stats.Rounds, oursCSR.Stats.MaxMessageBits,
			lin.Rounds, slow.Rounds, dc.Rounds, luby.Rounds, baseline.GK21Rounds(delta, n),
			ours.Stats.MaxMessageBits, logn)
	}
	t.Notes = append(t.Notes,
		"shape: ours/√Δ grows only polylogarithmically while linear grows ∝Δ and slow ∝Δ²",
		"ours max bits staying within a small multiple of log n is the CONGEST claim; the r=2 column applies Corollary 4.2 inside the pipeline")
	return t, nil
}

// E7 — Lemma A.1: list defective colorings exist iff Σ(d+1) > deg; the
// condition is tight on cliques.
func (s Suite) E7() (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Existence of list defective colorings (sequential, Lemma A.1)",
		Claim:  "Lemma A.1: solvable when Σ(d+1) > deg(v) for all v; tight on K_n with identical lists",
		Header: []string{"instance", "Σ(d+1) − deg", "expected", "outcome"},
	}
	type caseRow struct {
		name   string
		in     *coloring.Instance
		slack  int
		expect string
	}
	cases := []caseRow{
		{"K8 uniform d=1, Σ=deg", coloring.CliqueUniform(8, 1, 7), 0, "violates (1)"},
		{"K8 uniform d=1, Σ=deg+1", coloring.CliqueUniform(8, 1, 8), 1, "solved"},
		{"K12 uniform d=2, Σ=deg", coloring.CliqueUniform(12, 2, 11), 0, "violates (1)"},
		{"K12 uniform d=2, Σ=deg+1", coloring.CliqueUniform(12, 2, 12), 1, "solved"},
	}
	for seed := int64(0); seed < 3; seed++ {
		g := graph.GNP(40, 0.25, seed)
		in := coloring.UniformDefective(g, 128, g.MaxDegree()/2+2, 1, seed)
		if coloring.CondExistsLDC(in) {
			cases = append(cases, caseRow{fmt.Sprintf("GNP(40,.25) seed %d", seed), in, 1, "solved"})
		}
	}
	for _, c := range cases {
		phi, err := seq.ListDefective(c.in)
		outcome := "solved"
		if err == seq.ErrCondition {
			outcome = "violates (1)"
		} else if err != nil {
			outcome = "FAILED: " + err.Error()
		} else if verr := coloring.CheckLDC(c.in, phi); verr != nil {
			outcome = "INVALID: " + verr.Error()
		}
		t.AddRow(c.name, c.slack, c.expect, outcome)
		if outcome != c.expect {
			return t, fmt.Errorf("E7 %s: expected %q got %q", c.name, c.expect, outcome)
		}
	}
	return t, nil
}

// E8 — Lemma A.2: list arbdefective colorings exist iff Σ(2d+1) > deg.
func (s Suite) E8() (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Existence of list arbdefective colorings (sequential, Lemma A.2)",
		Claim:  "Lemma A.2: solvable when Σ(2d+1) > deg(v); the factor-2 gain over Lemma A.1 is real",
		Header: []string{"instance", "Σ(2d+1) > deg", "Σ(d+1) > deg", "outcome"},
	}
	// K9 with one color of defect 4: Σ(2d+1) = 9 > 8 but Σ(d+1) = 5 ≤ 8:
	// only the arbdefective variant can solve it.
	n := 9
	g := graph.Clique(n)
	in := &coloring.Instance{G: g, SpaceSize: 1, Lists: make([]coloring.NodeList, n)}
	for v := range in.Lists {
		in.Lists[v] = coloring.NodeList{Colors: []int{0}, Defect: []int{4}}
	}
	cases := []*coloring.Instance{in}
	for seed := int64(0); seed < 3; seed++ {
		gg := graph.GNP(36, 0.3, seed)
		c := coloring.UniformDefective(gg, 64, gg.MaxDegree()/3+2, 1, seed)
		cases = append(cases, c)
	}
	for i, c := range cases {
		name := fmt.Sprintf("case %d (n=%d)", i, c.G.N())
		condArb := coloring.CondExistsArb(c)
		condLDC := coloring.CondExistsLDC(c)
		phi, orient, err := seq.ListArbdefective(c)
		outcome := "solved"
		if err == seq.ErrCondition {
			outcome = "violates (2)"
		} else if err != nil {
			outcome = "FAILED: " + err.Error()
		} else if verr := coloring.CheckArb(c, phi, orient); verr != nil {
			outcome = "INVALID: " + verr.Error()
		}
		t.AddRow(name, condArb, condLDC, outcome)
		if condArb && outcome != "solved" {
			return t, fmt.Errorf("E8 %s: %s", name, outcome)
		}
	}
	return t, nil
}

// E9 — the Linial substrate: O(β²) colors in O(log* n) rounds [Lin87], and
// the defective trade-off of [Kuh09].
func (s Suite) E9() (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Linial substrate: colors and rounds; Kuhn09 defective trade-off",
		Claim:  "[Lin87]: O(Δ²) colors in O(log* n) rounds; [Kuh09]: d-defective O((β·D/(d+1))²) colors",
		Header: []string{"workload", "n", "β", "d", "colors", "bound", "rounds"},
	}
	ns := s.pick([]int{64, 512}, []int{64, 512, 4096, 32768})
	for _, n := range ns {
		g := graph.RandomRegular(n, 6, int64(n))
		o := graph.OrientSymmetric(g)
		eng := sim.NewEngine(g)
		_, colors, stats, err := linial.Proper(eng, o, linial.IDs(n), n)
		if err != nil {
			return nil, err
		}
		p2 := linial.SmallestPrimeAtLeast(2*6 + 1)
		t.AddRow(fmt.Sprintf("proper n=%d", n), n, 6, 0, colors, p2*p2, stats.Rounds)
	}
	// Defective sweep at fixed β: large n so the proper fixpoint is reached
	// before the defective step trades defect for colors.
	ng := 1024
	g := graph.RandomRegular(ng, 12, 2)
	o := graph.OrientSymmetric(g)
	for _, d := range s.pick([]int{1, 3}, []int{1, 3, 5, 8}) {
		eng := sim.NewEngine(g)
		phi, colors, stats, err := linial.Defective(eng, o, linial.IDs(ng), ng, d)
		if err != nil {
			return nil, err
		}
		if err := coloring.CheckDefective(g, phi, colors, d); err != nil {
			return nil, err
		}
		t.AddRow("defective β=12", ng, 12, d, colors, "(β·D/(d+1))²·c", stats.Rounds)
	}
	t.Notes = append(t.Notes, "rounds grow like log* n: doubling the exponent of n adds at most one round")
	return t, nil
}

// E10 — ablations: the congruence-class gap trick, the γ-class selection
// phase, and the candidate-family size k′.
func (s Suite) E10() (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Ablations: gap trick, γ-class selection, candidate family size",
		Claim:  "design choices called out in DESIGN.md §5",
		Header: []string{"ablation", "setting", "rounds", "max msg bits", "violations"},
	}
	// (a) gap g sweep on the generalized OLDC solver.
	for _, gap := range s.pick([]int{0, 2}, []int{0, 1, 2, 4}) {
		w, err := makeOLDCWorkload(8, 64, 1<<13, 8.0, 1, 2, 31)
		if err != nil {
			return nil, err
		}
		phi, stats, err := oldc.SolveMulti(w.eng, w.in, oldc.Options{Gap: gap, SkipValidate: true})
		if err != nil {
			return nil, err
		}
		viol := 0
		if coloring.CheckOLDCGap(w.o, w.in.Lists, phi, gap) != nil {
			viol = countGapViolations(w.o, w.in.Lists, phi, gap)
		}
		t.AddRow("gap trick", fmt.Sprintf("g=%d", gap), stats.Rounds, stats.MaxMessageBits, viol)
	}
	// (b) Lemma 3.6 (no γ-class selection) vs Lemma 3.8 (full two-phase).
	for _, mode := range []string{"Lemma 3.6", "Lemma 3.8"} {
		w, err := makeOLDCWorkload(16, 128, 1<<13, 5.0, 1, 3, 37)
		if err != nil {
			return nil, err
		}
		var phi coloring.Assignment
		var stats sim.Stats
		if mode == "Lemma 3.6" {
			phi, stats, err = oldc.SolveMulti(w.eng, w.in, oldc.Options{SkipValidate: true})
		} else {
			phi, stats, err = oldc.Solve(w.eng, w.in, oldc.Options{SkipValidate: true})
		}
		if err != nil {
			return nil, err
		}
		t.AddRow("class selection", mode, stats.Rounds, stats.MaxMessageBits,
			coloring.CountOLDCViolations(w.o, w.in.Lists, phi))
	}
	// (c) candidate family size k′ (violations should not grow as the
	// family shrinks thanks to the exact argmin selection, but the
	// pigeonhole headroom does).
	for _, kp := range s.pick([]int{2, 16}, []int{2, 4, 8, 16, 32}) {
		w, err := makeOLDCWorkload(8, 64, 1<<13, 5.0, 1, 2, 41)
		if err != nil {
			return nil, err
		}
		pr := defaultParams()
		pr.KPrimeFloor = kp
		pr.KPrimeCap = kp
		phi, stats, err := oldc.Solve(w.eng, w.in, oldc.Options{Params: pr, SkipValidate: true})
		if err != nil {
			return nil, err
		}
		t.AddRow("family size", fmt.Sprintf("k'=%d", kp), stats.Rounds, stats.MaxMessageBits,
			coloring.CountOLDCViolations(w.o, w.in.Lists, phi))
	}
	// (d) Theorem 1.3 variants: clustering with an arbdefective coloring
	// (𝒜^O branch, our main driver) vs a plain defective coloring
	// (𝒜^D branch, class count Θ(Λ^ν·κ²)).
	{
		g := graph.RandomRegular(96, 12, 47)
		eng := sim.NewEngine(g)
		init, m, _, err := linial.Proper(eng, graph.OrientSymmetric(g), linial.IDs(g.N()), g.N())
		if err != nil {
			return nil, err
		}
		for _, variant := range []string{"O (arbdefective)", "D (defective)"} {
			in := coloring.DegreePlusOne(g, 4*g.MaxDegree(), 49)
			var r arb.Result
			if variant == "O (arbdefective)" {
				r, err = arb.SolveListArbdefective(g, in, init, m, oldc.Solve, arb.Config{})
			} else {
				r, err = arb.SolveViaDefective(g, in, init, m, arb.Config{})
			}
			if err != nil {
				return nil, fmt.Errorf("E10 variant %s: %w", variant, err)
			}
			viol := 0
			if coloring.CheckProperList(in, r.Phi) != nil {
				viol = 1
			}
			t.AddRow("Thm 1.3 branch", variant, r.Stats.Rounds, r.Stats.MaxMessageBits, viol)
		}
	}
	return t, nil
}

func countGapViolations(o *graph.Oriented, lists []coloring.NodeList, phi coloring.Assignment, gap int) int {
	bad := 0
	for v := 0; v < o.N(); v++ {
		d, ok := lists[v].DefectOf(phi[v])
		if !ok {
			bad++
			continue
		}
		cnt := 0
		for _, u := range o.Out(v) {
			if absInt(phi[u]-phi[v]) <= gap {
				cnt++
			}
		}
		if cnt > d {
			bad++
		}
	}
	return bad
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// E11 — the +O(log* n) additive term: at fixed Δ, the rounds of the
// Theorem 1.4 pipeline are essentially independent of n (only the Linial
// bootstrap grows, by one round per exponentiation of n).
func (s Suite) E11() (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "(Δ+1)-coloring rounds vs n at fixed Δ",
		Claim:  "Theorems 1.3/1.4: the n-dependence is only the additive O(log* n) bootstrap",
		Header: []string{"Δ", "n", "ours rounds", "bootstrap rounds", "driver rounds", "max msg bits"},
	}
	delta := 8
	ns := s.pick([]int{64, 256}, []int{64, 256, 1024, 4096})
	for _, n := range ns {
		g := graph.RandomRegular(n, delta, int64(n))
		res, err := DeltaPlusOne(g)
		if err != nil {
			return nil, fmt.Errorf("E11 n=%d: %w", n, err)
		}
		boot, driver := 0, 0
		for _, p := range res.Phases {
			if p.Name == "linial-bootstrap" {
				boot = p.Stats.Rounds
			} else {
				driver = p.Stats.Rounds
			}
		}
		t.AddRow(delta, n, res.Stats.Rounds, boot, driver, res.Stats.MaxMessageBits)
	}
	t.Notes = append(t.Notes,
		"rounds grow ≈1.6× while n grows 64× — far below any log n dependence; the bootstrap column carries the pure log* n term, the mild driver growth is commit-valid-subset repair on larger graphs")
	return t, nil
}

// DeltaPlusOne is a small indirection so E11 does not import congest at
// the call sites.
func DeltaPlusOne(g *graph.Graph) (congest.Result, error) {
	return congest.DeltaPlusOne(g, congest.Config{})
}

// All runs every experiment in order.
func (s Suite) All() ([]*Table, error) {
	runners := []func() (*Table, error){
		s.E1, s.E2, s.E3, s.E4, s.E5, s.E6, s.E7, s.E8, s.E9, s.E10, s.E11, s.E12, s.E13,
	}
	var out []*Table
	for _, r := range runners {
		t, err := r()
		if t != nil {
			out = append(out, t)
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
