package bench

import (
	"errors"
	"runtime"
	"time"

	"repro/internal/chaos"
	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/oldc"
	"repro/internal/sim"
)

// ChaosBenchEntry is one detect-and-repair run under a built-in fault
// schedule: how much of the network survived the faults, what the repairs
// cost, and whether the final coloring certified.
type ChaosBenchEntry struct {
	Schedule     string  `json:"schedule"`
	N            int     `json:"n"`
	Delta        int     `json:"delta"`
	Rounds       int     `json:"rounds"`
	Dropped      int64   `json:"dropped"`
	Corrupted    int64   `json:"corrupted"`
	DecodeFaults int64   `json:"decode_faults"`
	InitialBad   int     `json:"initial_bad"`
	SurvivalRate float64 `json:"survival_rate"`
	Repairs      int     `json:"repairs"`
	RepairRounds int     `json:"repair_rounds"`
	Residuals    []int   `json:"residuals,omitempty"`
	Fallback     int     `json:"fallback_recolorings"`
	FinalBad     int     `json:"final_bad"`
	Valid        bool    `json:"valid"`
	MsPerRun     float64 `json:"ms_per_run"`
}

// ChaosBenchReport is the machine-readable BENCH_chaos.json payload
// (schema ldc-chaos-bench/v1): the robustness sibling of SimBenchReport
// and AlgBenchReport. It records, per built-in fault schedule, the
// survival and repair figures of oldc.SolveRobust on a fixed Δ=64
// instance.
type ChaosBenchReport struct {
	Schema  string            `json:"schema"`
	Date    string            `json:"date"`
	GoOS    string            `json:"goos"`
	GoArch  string            `json:"goarch"`
	CPUs    int               `json:"cpus"`
	Entries []ChaosBenchEntry `json:"benchmarks"`
}

// WriteJSON writes the report to path, or to stdout when path is "-".
func (rep ChaosBenchReport) WriteJSON(path string) error { return writeBenchJSON(path, rep) }

// RunChaosBench runs oldc.SolveRobust under every chaos.Builtin schedule
// on a fixed random regular Δ=64 instance (the ISSUE's robustness
// acceptance scale) and reports survival rate, repair cost, fault-ledger
// totals, and final validity per schedule. Everything except the wall
// clock is deterministic: fixed seeds, fixed schedules, worker-count
// independent stats.
func RunChaosBench() ChaosBenchReport {
	const (
		n     = 512
		delta = 64
	)
	rep := ChaosBenchReport{
		Schema: "ldc-chaos-bench/v1",
		Date:   time.Now().UTC().Format("2006-01-02"),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	g := graph.RandomRegular(n, delta, 1)
	o := graph.OrientByID(g)
	init := make([]int, n)
	for v := range init {
		init[v] = v
	}
	inst := coloring.SquareSumOriented(o, 1<<14, 6.0, 3, 7)
	in := oldc.Input{O: o, SpaceSize: 1 << 14, Lists: inst.Lists, InitColors: init, M: n}

	for _, sched := range chaos.Builtin(g, 42) {
		eng := sim.NewEngineWith(g, sim.Options{Faults: sched.Model})
		start := time.Now()
		_, rrep, err := oldc.SolveRobust(eng, in, oldc.RobustOptions{})
		elapsed := time.Since(start)

		e := ChaosBenchEntry{
			Schedule:     sched.Name,
			N:            n,
			Delta:        delta,
			Rounds:       rrep.Stats.Rounds,
			InitialBad:   rrep.InitialBad,
			SurvivalRate: rrep.SurvivalRate,
			Repairs:      rrep.Repairs,
			RepairRounds: rrep.RepairRounds,
			Residuals:    rrep.ResidualSizes,
			Fallback:     rrep.FallbackNodes,
			Valid:        err == nil,
			MsPerRun:     float64(elapsed.Microseconds()) / 1e3,
		}
		total := rrep.Stats.TotalFaults()
		e.Dropped = total.Dropped
		e.Corrupted = total.Corrupted
		e.DecodeFaults = total.DecodeFaults
		if err != nil {
			var res *oldc.ErrResidual
			if errors.As(err, &res) {
				e.FinalBad = len(res.Violators)
			} else {
				// Non-residual errors mean the run itself failed; record it
				// as everything-bad so the report can't read as healthy.
				e.FinalBad = n
			}
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep
}
