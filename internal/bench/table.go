// Package bench is the experiment harness: it regenerates, for every
// quantitative claim of the paper (the brief announcement has no tables or
// figures, so the theorem statements themselves define the experiments
// E1–E10 of DESIGN.md §4), the rows that EXPERIMENTS.md records. Each
// experiment builds its workload, runs the algorithms on the simulator,
// validates every output coloring, and reports rounds / message bits /
// color counts next to the paper's predicted shape.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is one experiment's result table.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && utf8.RuneCountInString(c) > widths[i] {
				widths[i] = utf8.RuneCountInString(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (header row first), for downstream
// plotting.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	meta := []string{"# " + t.ID, t.Title, t.Claim}
	if err := cw.Write(meta); err != nil {
		return err
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Suite configures experiment sizes. Quick keeps each experiment under a
// second (used by the root benchmarks and tests); the CLI uses full sizes.
type Suite struct {
	Quick bool
}

// pick returns quick when Quick, else full.
func (s Suite) pick(quick, full []int) []int {
	if s.Quick {
		return quick
	}
	return full
}
