package bench

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"time"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/oldc"
	"repro/internal/serve"
	"repro/internal/sim"
)

// ServeBenchEntry is one sustained-churn run of the incremental
// recoloring service: a fixed deterministic mutation sequence applied
// batch by batch, with per-batch recolor latency percentiles and the
// incremental-vs-from-scratch cost comparison.
type ServeBenchEntry struct {
	Delta           int     `json:"delta"`
	N               int     `json:"n"`
	FinalN          int     `json:"final_n"`
	Batches         int     `json:"batches"`
	Mutations       int     `json:"mutations"`
	MutationsPerSec float64 `json:"mutations_per_sec"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	MaxMs           float64 `json:"max_ms"`
	Recolored       int     `json:"recolored"`
	SweepRecolored  int     `json:"sweep_recolored"`
	RepairRounds    int     `json:"repair_rounds"`
	MaxResidual     int     `json:"max_residual"`
	FinalBad        int     `json:"final_bad"`
	Valid           bool    `json:"valid"`
	// Replay reports whether a second server fed the same batches
	// reproduced the coloring bit-identically (the determinism contract).
	Replay bool `json:"replay_deterministic"`
	// ScratchRounds is what a from-scratch SolveRobust of the final
	// mutated instance costs, for comparison with RepairRounds (the
	// incremental path's total) over the whole run.
	ScratchRounds int  `json:"scratch_rounds"`
	ScratchValid  bool `json:"scratch_valid"`
}

// ServeBenchReport is the machine-readable BENCH_serve.json payload
// (schema ldc-serve-bench/v1): sustained-churn throughput and latency of
// the incremental recoloring service at Δ=8 and Δ=64.
type ServeBenchReport struct {
	Schema  string            `json:"schema"`
	Date    string            `json:"date"`
	GoOS    string            `json:"goos"`
	GoArch  string            `json:"goarch"`
	CPUs    int               `json:"cpus"`
	Entries []ServeBenchEntry `json:"benchmarks"`
}

// WriteJSON writes the report to path, or to stdout when path is "-".
func (rep ServeBenchReport) WriteJSON(path string) error { return writeBenchJSON(path, rep) }

// serveChurnBatch generates one valid mutation batch against the live
// graph. Mutations within a batch touch disjoint endpoints, so validity
// against the pre-batch graph implies validity during application.
func serveChurnBatch(rng *rand.Rand, g *graph.Graph, size int) []serve.Mutation {
	var batch []serve.Mutation
	touched := map[int]bool{}
	free := func(vs ...int) bool {
		for _, v := range vs {
			if touched[v] {
				return false
			}
		}
		for _, v := range vs {
			touched[v] = true
		}
		return true
	}
	for len(batch) < size {
		switch rng.Intn(12) {
		case 0:
			batch = append(batch, serve.Mutation{Op: serve.OpAddNode})
		case 1:
			v := rng.Intn(g.N())
			if free(v) {
				batch = append(batch, serve.Mutation{Op: serve.OpRemoveNode, U: v})
			}
		case 2, 3, 4, 5, 6:
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u != v && !g.HasEdge(u, v) && free(u, v) {
				batch = append(batch, serve.Mutation{Op: serve.OpAddEdge, U: u, V: v})
			}
		default:
			u := rng.Intn(g.N())
			if nbrs := g.Neighbors(u); len(nbrs) > 0 {
				v := int(nbrs[rng.Intn(len(nbrs))])
				if free(u, v) {
					batch = append(batch, serve.Mutation{Op: serve.OpRemoveEdge, U: u, V: v})
				}
			}
		}
	}
	return batch
}

// RunServeBench drives the incremental recoloring service under a
// sustained deterministic churn load at Δ=8 and Δ=64: it measures
// mutations/sec and per-batch recolor latency percentiles, verifies the
// coloring after the run, replays the identical mutation sequence on a
// fresh server to check the determinism contract, and solves the final
// mutated instance from scratch for the cost comparison. Everything
// except the wall clock is deterministic.
func RunServeBench() (ServeBenchReport, error) {
	rep := ServeBenchReport{
		Schema: "ldc-serve-bench/v1",
		Date:   time.Now().UTC().Format("2006-01-02"),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	cases := []struct {
		delta, n, batches int
	}{
		{8, 512, 200},
		{64, 256, 60},
	}
	for _, tc := range cases {
		g := graph.RandomRegular(tc.n, tc.delta, 1)
		cfg := serve.Config{Seed: 7}
		s, err := serve.New(g, cfg)
		if err != nil {
			return rep, fmt.Errorf("bench: serve Δ=%d: initial solve: %w", tc.delta, err)
		}

		e := ServeBenchEntry{Delta: tc.delta, N: tc.n, Batches: tc.batches}
		rng := rand.New(rand.NewSource(int64(tc.delta)))
		script := make([][]serve.Mutation, 0, tc.batches)
		latencies := make([]float64, 0, tc.batches)
		var total time.Duration
		for b := 0; b < tc.batches; b++ {
			o, _, _ := s.Instance()
			batch := serveChurnBatch(rng, o.Graph(), 1+rng.Intn(8))
			script = append(script, batch)
			start := time.Now()
			brep, err := s.Apply(batch)
			elapsed := time.Since(start)
			if err != nil {
				return rep, fmt.Errorf("bench: serve Δ=%d batch %d: %w", tc.delta, b, err)
			}
			total += elapsed
			latencies = append(latencies, float64(elapsed.Microseconds())/1e3)
			e.Mutations += brep.Mutations
			e.Recolored += brep.Recolored
			e.SweepRecolored += brep.SweepRecolored
			e.RepairRounds += brep.Rounds
			if len(brep.Residual) > e.MaxResidual {
				e.MaxResidual = len(brep.Residual)
			}
		}
		e.FinalN = s.N()
		if total > 0 {
			e.MutationsPerSec = float64(e.Mutations) / total.Seconds()
		}
		sort.Float64s(latencies)
		e.P50Ms = latencies[len(latencies)/2]
		e.P99Ms = latencies[len(latencies)*99/100]
		e.MaxMs = latencies[len(latencies)-1]

		o, lists, _ := s.Instance()
		e.FinalBad = len(coloring.OLDCViolators(o, lists, s.Snapshot()))
		e.Valid = e.FinalBad == 0

		// Determinism: replay the identical script on a fresh server.
		s2, err := serve.New(graph.RandomRegular(tc.n, tc.delta, 1), cfg)
		if err != nil {
			return rep, fmt.Errorf("bench: serve Δ=%d replay: %w", tc.delta, err)
		}
		e.Replay = true
		for b, batch := range script {
			if _, err := s2.Apply(batch); err != nil {
				return rep, fmt.Errorf("bench: serve Δ=%d replay batch %d: %w", tc.delta, b, err)
			}
		}
		if !reflect.DeepEqual(s.Snapshot(), s2.Snapshot()) {
			e.Replay = false
		}

		// From-scratch baseline on the final mutated instance.
		init := make([]int, o.N())
		for v := range init {
			init[v] = v
		}
		in := oldc.Input{O: o, SpaceSize: 4096, Lists: lists, InitColors: init, M: o.N()}
		phi, srep, err := oldc.SolveRobust(sim.NewEngine(o.Graph()), in, oldc.RobustOptions{})
		e.ScratchRounds = srep.Stats.Rounds
		e.ScratchValid = err == nil && coloring.CheckOLDC(o, lists, phi) == nil

		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}
