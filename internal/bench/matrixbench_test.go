package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMatrixBenchQuick runs the who-wins matrix in quick mode: every
// family must produce a validated row for every Δ column, and the emitted
// ldc-verify documents must exist and be non-empty.
func TestMatrixBenchQuick(t *testing.T) {
	dir := t.TempDir()
	rep, err := RunMatrixBench(true, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "ldc-matrix-bench/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	families := make(map[string]bool)
	wantRows := len(matrixFamilies()) * len(matrixCases(true))
	if len(rep.Entries) != wantRows {
		t.Fatalf("%d rows, want %d", len(rep.Entries), wantRows)
	}
	for _, row := range rep.Entries {
		families[row.Family] = true
		if !row.Valid {
			t.Errorf("%s/%s Δ=%d marked invalid", row.Family, row.Knob, row.Delta)
		}
		if row.Rounds <= 0 || row.Messages <= 0 {
			t.Errorf("%s/%s Δ=%d has empty stats: %+v", row.Family, row.Knob, row.Delta, row)
		}
		if row.Doc == "" {
			t.Errorf("%s/%s Δ=%d missing verify doc", row.Family, row.Knob, row.Delta)
			continue
		}
		st, err := os.Stat(filepath.Join(dir, row.Doc))
		if err != nil || st.Size() == 0 {
			t.Errorf("verify doc %s missing or empty (%v)", row.Doc, err)
		}
	}
	if len(families) < 4 {
		t.Fatalf("only %d families measured, want >= 4", len(families))
	}
}
