package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/baseline"
	"repro/internal/coloring"
	"repro/internal/congest"
	"repro/internal/fk24"
	"repro/internal/graph"
	"repro/internal/maus21"
	"repro/internal/oldc"
	"repro/internal/sim"
)

// MatrixRow is one (family, knob, Δ) cell of the who-wins matrix: a single
// validated solve with its round, message, and wall-clock cost. Rows with
// the same Delta are directly comparable; Knob distinguishes variants
// within a family (fk24 bucket depth, maus21 palette knob).
type MatrixRow struct {
	Family     string  `json:"family"`
	Knob       string  `json:"knob,omitempty"`
	Problem    string  `json:"problem"` // "oldc" or "proper"
	N          int     `json:"n"`
	Delta      int     `json:"delta"`
	Rounds     int     `json:"rounds"`
	Messages   int64   `json:"messages"`
	TotalBits  int64   `json:"total_bits"`
	MaxMsgBits int     `json:"max_message_bits"`
	Colors     int     `json:"colors"`
	NsPerSolve float64 `json:"ns_per_solve"`
	Valid      bool    `json:"valid"`
	Doc        string  `json:"doc,omitempty"` // ldc-verify document, when requested
}

// MatrixReport is the machine-readable BENCH_matrix.json payload (schema
// ldc-matrix-bench/v1): the cross-family comparison grid COMPARISON.md and
// the E14 experiment read their crossover claims from. Every row is a
// validated solve — RunMatrixBench fails if any row's output is invalid —
// and when docs were requested each row names an ldc-verify document that
// independently re-checks it.
type MatrixReport struct {
	Schema  string      `json:"schema"`
	Date    string      `json:"date"`
	GoOS    string      `json:"goos"`
	GoArch  string      `json:"goarch"`
	CPUs    int         `json:"cpus"`
	Quick   bool        `json:"quick,omitempty"`
	Deltas  []int       `json:"deltas"`
	Entries []MatrixRow `json:"rows"`
}

// WriteJSON writes the report to path, or to stdout when path is "-".
func (rep MatrixReport) WriteJSON(path string) error { return writeBenchJSON(path, rep) }

// matrixCase is one Δ column of the matrix. Space and κ scale with Δ the
// same way the algbench cases do, so the OLDC instances stay solvable
// under cover.Practical().
type matrixCase struct {
	n     int
	delta int
	space int
	kappa float64
}

func matrixCases(quick bool) []matrixCase {
	if quick {
		return []matrixCase{
			{128, 8, 1 << 12, 5.0},
			{128, 16, 1 << 13, 5.5},
			{96, 32, 1 << 14, 6.0},
		}
	}
	return []matrixCase{
		{512, 8, 1 << 12, 5.0},
		{512, 64, 1 << 14, 6.0},
		{512, 128, 1 << 15, 6.0},
	}
}

// verifyDoc is the ldc-verify input document a matrix row can emit, so CI
// can re-validate every committed row with the standalone checker.
type verifyDoc struct {
	N        int            `json:"n"`
	Edges    [][2]int       `json:"edges"`
	Space    int            `json:"space"`
	Lists    []verifyList   `json:"lists,omitempty"`
	Coloring []int          `json:"coloring"`
	Variant  string         `json:"variant"`
}

type verifyList struct {
	Colors  []int `json:"colors"`
	Defects []int `json:"defects"`
}

// matrixSolve is one family variant: it solves its problem on (g, case)
// and reports stats, the palette bound for proper colorings, and a
// validation error. Solvers that consume the shared OLDC instance receive
// it; proper-coloring families ignore it.
type matrixSolve struct {
	family  string
	knob    string
	problem string // "oldc" | "proper"
	run     func(g *graph.Graph, c matrixCase, in oldc.Input) (coloring.Assignment, sim.Stats, int, error)
}

// matrixFamilies enumerates the contenders: the Theorem 1.1 OLDC solver,
// the Fuchs–Kuhn 2024 iterative framework at two bucket depths, the Maus
// 2021 O(kΔ) trade-off at two knob values, the full Theorem 1.4 CONGEST
// stack (which runs Theorem 1.3's driver over Theorem 1.1 internally), and
// the degree-sequential Luby baseline.
func matrixFamilies() []matrixSolve {
	return []matrixSolve{
		{"oldc", "", "oldc", func(g *graph.Graph, c matrixCase, in oldc.Input) (coloring.Assignment, sim.Stats, int, error) {
			phi, st, err := oldc.Solve(sim.NewEngine(g), in, oldc.Options{})
			return phi, st, 0, err
		}},
		{"fk24", "buckets=default", "oldc", func(g *graph.Graph, c matrixCase, in oldc.Input) (coloring.Assignment, sim.Stats, int, error) {
			fin := fk24.Input{O: in.O, SpaceSize: in.SpaceSize, Lists: in.Lists, InitColors: in.InitColors, M: in.M}
			phi, st, err := fk24.Solve(sim.NewEngine(g), fin, fk24.Options{})
			return phi, st, 0, err
		}},
		{"fk24", "buckets=m", "oldc", func(g *graph.Graph, c matrixCase, in oldc.Input) (coloring.Assignment, sim.Stats, int, error) {
			fin := fk24.Input{O: in.O, SpaceSize: in.SpaceSize, Lists: in.Lists, InitColors: in.InitColors, M: in.M}
			phi, st, err := fk24.Solve(sim.NewEngine(g), fin, fk24.Options{Buckets: fin.M})
			return phi, st, 0, err
		}},
		{"maus21", "k=2", "proper", func(g *graph.Graph, c matrixCase, in oldc.Input) (coloring.Assignment, sim.Stats, int, error) {
			phi, colors, st, err := maus21.Solve(sim.NewEngine(g), g, maus21.Options{K: 2})
			return phi, st, colors, err
		}},
		{"maus21", "k=4", "proper", func(g *graph.Graph, c matrixCase, in oldc.Input) (coloring.Assignment, sim.Stats, int, error) {
			phi, colors, st, err := maus21.Solve(sim.NewEngine(g), g, maus21.Options{K: 4})
			return phi, st, colors, err
		}},
		{"delta1", "", "proper", func(g *graph.Graph, c matrixCase, in oldc.Input) (coloring.Assignment, sim.Stats, int, error) {
			res, err := congest.DeltaPlusOne(g, congest.Config{})
			return res.Phi, res.Stats, g.MaxDegree() + 1, err
		}},
		{"degluby", "", "proper", func(g *graph.Graph, c matrixCase, in oldc.Input) (coloring.Assignment, sim.Stats, int, error) {
			phi, st, err := baseline.DegreeLuby(sim.NewEngine(g), g, 1)
			return phi, st, g.MaxDegree() + 1, err
		}},
	}
}

// matrixIters is how many times each cell is solved; the reported
// wall-clock is the fastest iteration, which filters scheduler noise
// without inflating the run the way a fixed time floor would across
// dozens of cells.
func matrixIters(quick bool) int {
	if quick {
		return 1
	}
	return 3
}

// RunMatrixBench runs every family variant on every Δ column and returns
// the who-wins matrix. Each cell's output is validated in-process (OLDC
// families against the shared square-sum instance under the by-ID
// orientation, proper families against their palette bound); an invalid
// cell fails the whole run. When docsDir is non-empty, each row also
// writes a self-contained ldc-verify document there and records its
// filename, so the committed matrix stays independently re-checkable.
func RunMatrixBench(quick bool, docsDir string) (MatrixReport, error) {
	rep := MatrixReport{
		Schema: "ldc-matrix-bench/v1",
		Date:   time.Now().UTC().Format("2006-01-02"),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Quick:  quick,
	}
	iters := matrixIters(quick)
	for _, c := range matrixCases(quick) {
		rep.Deltas = append(rep.Deltas, c.delta)
		g := graph.RandomRegular(c.n, c.delta, 1)
		o := graph.OrientByID(g)
		init := make([]int, c.n)
		for v := range init {
			init[v] = v
		}
		inst := coloring.SquareSumOriented(o, c.space, c.kappa, 3, 7)
		in := oldc.Input{O: o, SpaceSize: c.space, Lists: inst.Lists, InitColors: init, M: c.n}

		for _, fam := range matrixFamilies() {
			var (
				phi    coloring.Assignment
				stats  sim.Stats
				bound  int
				best   time.Duration
			)
			for it := 0; it < iters; it++ {
				start := time.Now()
				p, st, b, err := fam.run(g, c, in)
				el := time.Since(start)
				if err != nil {
					return rep, fmt.Errorf("matrix: %s/%s Δ=%d: %w", fam.family, fam.knob, c.delta, err)
				}
				if it == 0 || el < best {
					best = el
				}
				phi, stats, bound = p, st, b
			}
			row := MatrixRow{
				Family:     fam.family,
				Knob:       fam.knob,
				Problem:    fam.problem,
				N:          c.n,
				Delta:      c.delta,
				Rounds:     stats.Rounds,
				Messages:   stats.Messages,
				TotalBits:  stats.TotalBits,
				MaxMsgBits: stats.MaxMessageBits,
				NsPerSolve: float64(best.Nanoseconds()),
			}
			switch fam.problem {
			case "oldc":
				row.Colors = coloring.CountColors(phi)
				row.Valid = coloring.CheckOLDC(o, in.Lists, phi) == nil
			case "proper":
				row.Colors = coloring.CountColors(phi)
				row.Valid = coloring.CheckProper(g, phi, bound) == nil
			}
			if !row.Valid {
				return rep, fmt.Errorf("matrix: %s/%s Δ=%d produced an invalid coloring", fam.family, fam.knob, c.delta)
			}
			if docsDir != "" {
				name, err := writeMatrixDoc(docsDir, g, c, in, fam, phi, bound)
				if err != nil {
					return rep, err
				}
				row.Doc = name
			}
			rep.Entries = append(rep.Entries, row)
		}
	}
	return rep, nil
}

// writeMatrixDoc emits one row's ldc-verify document and returns its file
// name (relative to docsDir).
func writeMatrixDoc(dir string, g *graph.Graph, c matrixCase, in oldc.Input, fam matrixSolve, phi coloring.Assignment, bound int) (string, error) {
	d := verifyDoc{N: g.N(), Coloring: phi}
	g.ForEachEdge(func(u, v int) { d.Edges = append(d.Edges, [2]int{u, v}) })
	switch fam.problem {
	case "oldc":
		d.Space = in.SpaceSize
		d.Variant = "oldc-by-id"
		d.Lists = make([]verifyList, len(in.Lists))
		for v, l := range in.Lists {
			d.Lists[v] = verifyList{Colors: l.Colors, Defects: l.Defect}
		}
	case "proper":
		d.Space = bound
		d.Variant = "proper"
	}
	knob := fam.knob
	if knob == "" {
		knob = "base"
	}
	name := fmt.Sprintf("row-%s-%s-d%d.json", fam.family, sanitizeKnob(knob), c.delta)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(d); err != nil {
		f.Close()
		return "", err
	}
	return name, f.Close()
}

// sanitizeKnob maps a knob label to a filename-safe slug.
func sanitizeKnob(knob string) string {
	out := make([]rune, 0, len(knob))
	for _, r := range knob {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}
