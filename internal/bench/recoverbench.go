package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/sim"
)

// KillRecoveryEntry is one supervised DegreeLuby run under a built-in
// kill plan: how many times the process died, what resuming from the
// round-boundary checkpoint cost, and whether the final coloring still
// matches an uninterrupted run.
type KillRecoveryEntry struct {
	Plan     string `json:"plan"`
	Spec     string `json:"spec"`
	N        int    `json:"n"`
	Delta    int    `json:"delta"`
	Rounds   int    `json:"rounds"`
	Restarts int    `json:"restarts"`
	// RestoreMs is the cumulative checkpoint read+restore latency across
	// all restarts — the recovery cost that is not re-executed rounds
	// (cadence 1 means no rounds are replayed).
	RestoreMs float64 `json:"restore_ms"`
	TotalMs   float64 `json:"total_ms"`
	CkptBytes int     `json:"ckpt_bytes"`
	Valid     bool    `json:"valid"`
	// Identical reports whether the resumed coloring is bit-identical to
	// the same seed's uninterrupted run (the checkpoint determinism
	// contract; wire-fault plans excepted, where both runs share faults).
	Identical bool `json:"identical_to_uninterrupted"`
}

// WALReplayEntry is one durable-store crash/reopen cycle: a churn history
// is written through the WAL, the store is abandoned, and a fresh open
// replays the full log. ReplayMs is the complete open latency (snapshot
// load + WAL replay + re-solve of each batch).
type WALReplayEntry struct {
	Delta          int     `json:"delta"`
	N              int     `json:"n"`
	Batches        int     `json:"batches"`
	Mutations      int     `json:"mutations"`
	WALBytes       int64   `json:"wal_bytes"`
	ReplayMs       float64 `json:"replay_ms"`
	BatchesPerSec  float64 `json:"batches_per_sec"`
	MBPerSec       float64 `json:"mb_per_sec"`
	RestoredEqual  bool    `json:"restored_identical"`
	SnapshotBytes  int     `json:"snapshot_bytes"`
	SnapRestoreMs  float64 `json:"snap_restore_ms"`
	SnapshotEvery  int     `json:"snapshot_every"`
	CompactedBatch int     `json:"batches_after_snapshot"`
}

// RecoverBenchReport is the machine-readable BENCH_recover.json payload
// (schema ldc-recover-bench/v1): crash-recovery figures for both
// execution layers at Δ=8 and Δ=64 — supervised kill/resume latency for
// engine runs, and WAL replay throughput for the durable serve store.
type RecoverBenchReport struct {
	Schema string              `json:"schema"`
	Date   string              `json:"date"`
	GoOS   string              `json:"goos"`
	GoArch string              `json:"goarch"`
	CPUs   int                 `json:"cpus"`
	Kills  []KillRecoveryEntry `json:"kill_recovery"`
	WAL    []WALReplayEntry    `json:"wal_replay"`
}

// WriteJSON writes the report to path, or to stdout when path is "-".
func (rep RecoverBenchReport) WriteJSON(path string) error { return writeBenchJSON(path, rep) }

// runKillPlan executes one supervised DegreeLuby run under the plan,
// checkpointing every round, and reports the recovery accounting. Plans
// with shard kills run on the sharded engine (4 shards); the coloring is
// engine-independent either way.
func runKillPlan(g *graph.Graph, delta int, seed int64, np chaos.NamedPlan, ckptPath string) (KillRecoveryEntry, error) {
	e := KillRecoveryEntry{Plan: np.Name, Spec: np.Spec, N: g.N(), Delta: delta}
	maxRounds := baseline.DegreeLubyMaxRounds(g.N())
	sharded := false
	for _, k := range np.Plan.Kills {
		if k.Shard >= 0 {
			sharded = true
		}
	}
	ckp := &sim.Checkpointer{Path: ckptPath, Every: 1}
	killHook := np.Plan.KillHook()
	var (
		phi        coloring.Assignment
		stats      sim.Stats
		restoreDur time.Duration
	)
	start := time.Now()
	err := chaos.Supervise(chaos.SuperviseOptions{
		MaxRestarts: 2 * len(np.Plan.Kills),
		Sleep:       func(time.Duration) {}, // latency figures exclude backoff
	}, func(attempt int) error {
		alg := baseline.NewDegreeLuby(g, seed)
		var eng sim.Resumable
		if sharded {
			eng = shard.FromGraph(g, shard.Options{Shards: 4, Faults: np.Plan.Model})
		} else {
			eng = sim.NewEngineWith(g, sim.Options{Faults: np.Plan.Model})
		}
		eng.SetAfterRound(sim.ChainHooks(ckp.Hook(alg), killHook))
		startRound, prior := 0, sim.Stats{}
		if attempt > 0 {
			t0 := time.Now()
			ck, err := sim.ReadCheckpoint(ckptPath)
			if err != nil {
				return err
			}
			if err := ck.Restore(alg); err != nil {
				return err
			}
			restoreDur += time.Since(t0)
			e.Restarts = attempt
			startRound, prior = ck.Round, ck.Stats
		}
		s, err := eng.RunFrom(alg, startRound, maxRounds, prior)
		if err != nil {
			return err
		}
		stats, phi = s, alg.Colors()
		return nil
	})
	if err != nil {
		return e, fmt.Errorf("bench: recover plan %s: %w", np.Name, err)
	}
	e.TotalMs = float64(time.Since(start).Microseconds()) / 1e3
	e.RestoreMs = float64(restoreDur.Microseconds()) / 1e3
	e.Rounds = stats.Rounds
	if img, err := os.ReadFile(ckptPath); err == nil {
		e.CkptBytes = len(img)
	}
	e.Valid = coloring.CheckProper(g, phi, g.MaxDegree()+1) == nil

	// Uninterrupted reference under the same wire-fault model (no kills):
	// the supervised run must land on the identical coloring.
	refAlg := baseline.NewDegreeLuby(g, seed)
	refEng := sim.NewEngineWith(g, sim.Options{Faults: np.Plan.Model})
	if _, err := refEng.Run(refAlg, maxRounds); err != nil {
		return e, fmt.Errorf("bench: recover plan %s reference: %w", np.Name, err)
	}
	e.Identical = reflect.DeepEqual(phi, refAlg.Colors())
	return e, nil
}

// runWALReplay writes a deterministic churn history through a durable
// store, abandons it without closing (simulating a crash), and measures
// a fresh open's full recovery latency. SnapshotEvery is set mid-history
// so the reopen exercises both the snapshot load and WAL replay paths.
func runWALReplay(delta, n, batches int, dir string) (WALReplayEntry, error) {
	snapEvery := batches/2 + 1 // one compaction mid-run, then WAL grows again
	e := WALReplayEntry{Delta: delta, N: n, Batches: batches, SnapshotEvery: snapEvery}
	cfg := serve.Config{Seed: 7}
	mkGraph := func() *graph.Graph { return graph.RandomRegular(n, delta, 1) }
	d, err := serve.OpenDurable(mkGraph(), cfg, dir, serve.DurableOptions{
		SnapshotEvery: snapEvery, SyncEvery: 8,
	})
	if err != nil {
		return e, fmt.Errorf("bench: wal Δ=%d open: %w", delta, err)
	}
	ref, err := serve.New(mkGraph(), cfg)
	if err != nil {
		return e, fmt.Errorf("bench: wal Δ=%d reference: %w", delta, err)
	}
	rng := rand.New(rand.NewSource(int64(delta)))
	for b := 0; b < batches; b++ {
		o, _, _ := d.Server().Instance()
		batch := serveChurnBatch(rng, o.Graph(), 1+rng.Intn(8))
		if _, err := d.Apply(batch); err != nil {
			return e, fmt.Errorf("bench: wal Δ=%d batch %d: %w", delta, b, err)
		}
		if _, err := ref.Apply(batch); err != nil {
			return e, fmt.Errorf("bench: wal Δ=%d reference batch %d: %w", delta, b, err)
		}
		e.Mutations += len(batch)
	}
	if err := d.Sync(); err != nil {
		return e, err
	}
	gen := d.Generation()
	e.CompactedBatch = batches - snapEvery*gen
	// Crash: the store is abandoned with its WAL fsynced but never Closed.
	if st, err := os.Stat(filepath.Join(dir, fmt.Sprintf("wal-%06d.log", gen))); err == nil {
		e.WALBytes = st.Size()
	}
	img := d.Server().EncodeState()
	e.SnapshotBytes = len(img)
	t0 := time.Now()
	if _, err := serve.FromState(img, cfg); err != nil {
		return e, fmt.Errorf("bench: wal Δ=%d snapshot decode: %w", delta, err)
	}
	e.SnapRestoreMs = float64(time.Since(t0).Microseconds()) / 1e3

	t0 = time.Now()
	d2, err := serve.OpenDurable(nil, cfg, dir, serve.DurableOptions{SnapshotEvery: snapEvery, SyncEvery: 8})
	if err != nil {
		return e, fmt.Errorf("bench: wal Δ=%d reopen: %w", delta, err)
	}
	defer d2.Close()
	replay := time.Since(t0)
	if derr := d2.Degraded(); derr != nil {
		return e, fmt.Errorf("bench: wal Δ=%d reopen degraded: %w", delta, derr)
	}
	e.ReplayMs = float64(replay.Microseconds()) / 1e3
	if replay > 0 {
		e.BatchesPerSec = float64(e.CompactedBatch) / replay.Seconds()
		e.MBPerSec = float64(e.WALBytes) / (1 << 20) / replay.Seconds()
	}
	e.RestoredEqual = reflect.DeepEqual(d2.Server().Snapshot(), ref.Snapshot())
	return e, nil
}

// RunRecoverBench measures crash recovery at Δ=8 and Δ=64 on both
// execution layers: supervised engine runs under every built-in kill
// plan (checkpoint restore latency, restart counts, determinism against
// an uninterrupted run), and durable-store reopens (snapshot decode and
// WAL replay throughput after a simulated crash). Everything except the
// wall clock is deterministic.
func RunRecoverBench() (RecoverBenchReport, error) {
	rep := RecoverBenchReport{
		Schema: "ldc-recover-bench/v1",
		Date:   time.Now().UTC().Format("2006-01-02"),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	scratch, err := os.MkdirTemp("", "ldc-recover-bench")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(scratch)

	cases := []struct{ delta, n int }{{8, 256}, {64, 512}}
	for _, tc := range cases {
		g := graph.RandomRegular(tc.n, tc.delta, 1)
		for i, np := range chaos.BuiltinRecovery(g, 42) {
			ckpt := filepath.Join(scratch, fmt.Sprintf("d%d-%d.ckpt", tc.delta, i))
			e, err := runKillPlan(g, tc.delta, 11, np, ckpt)
			if err != nil {
				return rep, err
			}
			rep.Kills = append(rep.Kills, e)
		}
	}
	walCases := []struct{ delta, n, batches int }{{8, 512, 200}, {64, 256, 60}}
	for _, tc := range walCases {
		dir := filepath.Join(scratch, fmt.Sprintf("wal-d%d", tc.delta))
		e, err := runWALReplay(tc.delta, tc.n, tc.batches, dir)
		if err != nil {
			return rep, err
		}
		rep.WAL = append(rep.WAL, e)
	}
	return rep, nil
}
