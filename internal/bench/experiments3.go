package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/coloring"
	"repro/internal/congest"
	"repro/internal/csr"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/oldc"
	"repro/internal/sim"
)

// E12 — Appendix C: the internal computation at nodes is super-polynomial
// in the candidate-family parameters, and the paper's remedy is the color
// space reduction with p = Δ^ε, which shrinks every local enumeration to
// the subspace size. This experiment measures the actual local-computation
// wall time of the OLDC solver with and without the reduction (same
// instance, same validated output).
func (s Suite) E12() (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "Internal computation: direct solve vs color space reduction",
		Claim:  "Appendix C: recursive reduction with p = |C|^{1/r} makes local computation per node small (the sets enumerated shrink with the subspace)",
		Header: []string{"mode", "p", "rounds", "max msg bits", "wall ms", "valid"},
	}
	space := 1 << 12
	beta := 8
	reps := 3
	if s.Quick {
		reps = 1
	}
	type mode struct {
		name string
		p    int
	}
	modes := []mode{{"direct", space}, {"csr r=2", 64}, {"csr r=3", 16}}
	for _, md := range modes {
		var phi coloring.Assignment
		var stats sim.Stats
		var err error
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			w, werr := makeOLDCWorkload(beta, 8*beta, space, 14.0, 1, 3, 1234)
			if werr != nil {
				return nil, werr
			}
			if md.name == "direct" {
				phi, stats, err = oldc.Solve(w.eng, w.in, oldc.Options{})
			} else {
				phi, stats, err = csr.Reduce(w.eng, w.in, csr.Config{P: md.p, Kappa: 1.1}, oldc.Solve)
			}
			if err != nil {
				return nil, fmt.Errorf("E12 %s: %w", md.name, err)
			}
			if rep == 0 {
				if verr := coloring.CheckOLDC(w.o, w.in.Lists, phi); verr != nil {
					return nil, verr
				}
			}
		}
		wall := time.Since(start).Seconds() * 1000 / float64(reps)
		t.AddRow(md.name, md.p, stats.Rounds, stats.MaxMessageBits, math.Round(wall*100)/100, true)
	}
	t.Notes = append(t.Notes,
		"wall time is dominated by the per-node candidate-family enumeration, which the reduction shrinks along with the messages")
	return t, nil
}

// E13 — edge coloring via line graphs: the bounded-neighborhood-
// independence family (θ(L(G)) ≤ 2) the paper's color-space-reduction
// discussion targets. The pipeline run on L(G) gives a (2Δ−1)-edge
// coloring; the MIS application composes on top.
func (s Suite) E13() (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "Edge coloring on line graphs and the MIS application",
		Claim:  "line graphs have neighborhood independence ≤ 2 (§1/§4 discussion); the pipeline yields (2Δ−1)-edge-colorings; coloring → MIS in +χ rounds",
		Header: []string{"Δ(G)", "edges", "θ(L)", "edge colors", "palette 2Δ−1", "rounds", "MIS rounds"},
	}
	degrees := s.pick([]int{4}, []int{4, 6, 8})
	for _, d := range degrees {
		g := graph.RandomRegular(16*d, d, int64(d)*13)
		lg, _ := g.LineGraph()
		theta, err := lg.NeighborhoodIndependence()
		if err != nil {
			return nil, err
		}
		if theta > 2 {
			return nil, fmt.Errorf("E13: line graph θ=%d > 2", theta)
		}
		res, err := congest.DeltaPlusOne(lg, congest.Config{})
		if err != nil {
			return nil, fmt.Errorf("E13 Δ=%d: %w", d, err)
		}
		palette := lg.MaxDegree() + 1
		if err := coloring.CheckProper(lg, res.Phi, palette); err != nil {
			return nil, err
		}
		set, misStats, err := mis.FromColoring(sim.NewEngine(lg), lg, res.Phi, palette)
		if err != nil {
			return nil, err
		}
		if err := mis.Check(lg, set); err != nil {
			return nil, err
		}
		t.AddRow(d, g.M(), theta, coloring.CountColors(res.Phi), 2*d-1, res.Stats.Rounds, misStats.Rounds)
	}
	t.Notes = append(t.Notes,
		"an MIS of L(G) is a maximal matching of G — the coloring→MIS sweep costs only +palette rounds")
	return t, nil
}
