package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/baseline"
	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/shard"
)

// ShardBenchEntry is one point on the shard scaling curve: the same fixed
// graph and flood workload routed through S shards.
type ShardBenchEntry struct {
	Shards         int     `json:"shards"`
	GhostNodes     int64   `json:"ghost_nodes"`
	BoundaryEdges  int64   `json:"boundary_edges"`
	NsPerRound     float64 `json:"ns_per_round"`
	WiresPerSec    float64 `json:"wires_per_sec"`
	HeapInuseBytes uint64  `json:"heap_inuse_bytes"`
}

// ShardCurve describes the fixed graph the scaling entries share.
type ShardCurve struct {
	N             int               `json:"n"`
	M             int64             `json:"m"`
	WiresPerRound int64             `json:"wires_per_round"`
	Entries       []ShardBenchEntry `json:"entries"`
}

// ShardBigRun records the large streamed power-law solve: a graph ingested
// shard-by-shard without ever materializing the global adjacency, colored
// with DegreeLuby, and checkable end-to-end with ldc-verify.
type ShardBigRun struct {
	N              int     `json:"n"`
	M              int64   `json:"m"`
	MaxDegree      int     `json:"max_degree"`
	Shards         int     `json:"shards"`
	Seed           int64   `json:"seed"`
	Rounds         int     `json:"rounds"`
	Messages       int64   `json:"messages"`
	Colors         int     `json:"colors"`
	SolveSeconds   float64 `json:"solve_seconds"`
	HeapInuseBytes uint64  `json:"heap_inuse_bytes"`
	GhostNodes     int64   `json:"ghost_nodes"`
	BoundaryEdges  int64   `json:"boundary_edges"`
}

// ShardBenchReport is the machine-readable BENCH_shard.json payload.
type ShardBenchReport struct {
	Schema string      `json:"schema"`
	Date   string      `json:"date"`
	GoOS   string      `json:"goos"`
	GoArch string      `json:"goarch"`
	CPUs   int         `json:"cpus"`
	Curve  ShardCurve  `json:"curve"`
	BigRun ShardBigRun `json:"big_run"`
}

// WriteJSON writes the report to path, or to stdout when path is "-".
func (rep ShardBenchReport) WriteJSON(path string) error { return writeBenchJSON(path, rep) }

// Shard bench configuration. The curve graph is uniform GNP with average
// degree well above the largest shard count: splitting a broadcast's sorted
// neighbor list into per-shard runs costs one queue block per destination
// shard, so deg ≫ S keeps that overhead amortized while the delivery
// scatter — the cost sharding exists to confine — shrinks by 1/S. The full
// size is chosen so the one-shard inbox arena (~600 MB) thrashes a ~100 MB
// L3 while four shards' slices approach it.
const (
	shardCurveN       = 262_144
	shardCurveDeg     = 96.0
	shardCurveSeed    = 7
	shardBigN         = 1_200_000
	shardBigK         = 3
	shardBigSeed      = 11
	shardBigShards    = 8
	shardLubySeed     = 5
	shardWarmupRounds = 2
)

var shardCurveShards = []int{1, 2, 4, 8}

// RunShardBench runs the shard scaling curve and the large streamed
// power-law solve. When solveOut is non-empty the big run's instance and
// coloring are written there as an ldc-verify document. Quick mode shrinks
// both parts to CI-smoke size.
func RunShardBench(quick bool, solveOut string) (ShardBenchReport, error) {
	rep := ShardBenchReport{
		Schema: "ldc-shard-bench/v1",
		Date:   time.Now().UTC().Format("2006-01-02"),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}

	curveN, curveDeg := shardCurveN, shardCurveDeg
	counts := shardCurveShards
	reps, timed := 3, 5
	if quick {
		curveN, curveDeg = 2048, 16
		counts = []int{1, 2, 4}
		reps, timed = 2, 3
	}
	es := graph.StreamGNP(curveN, curveDeg/float64(curveN), shardCurveSeed)

	// The curve isolates routing throughput, so keep the collector out of
	// the timed windows: a forced GC before each repetition plus a higher
	// GC target means no cycle lands mid-measurement on one config and not
	// another.
	oldGC := debug.SetGCPercent(300)
	defer debug.SetGCPercent(oldGC)

	rep.Curve = ShardCurve{N: curveN}
	for _, s := range counts {
		eng, err := shard.Ingest(es, shard.Options{Shards: s})
		if err != nil {
			return rep, fmt.Errorf("shardbench: ingest curve graph: %w", err)
		}
		rep.Curve.M = eng.Edges()
		a := &benchFlood{min: make([]int64, curveN)}
		for v := range a.min {
			a.min[v] = int64(v)
		}
		if _, err := eng.Run(&roundBudget{Algorithm: a, rounds: shardWarmupRounds}, shardWarmupRounds+1); err != nil {
			return rep, fmt.Errorf("shardbench: warmup S=%d: %w", s, err)
		}
		best := 0.0
		var bestNs float64
		for r := 0; r < reps; r++ {
			runtime.GC()
			start := time.Now()
			st, err := eng.Run(&roundBudget{Algorithm: a, rounds: timed}, timed+1)
			if err != nil {
				return rep, fmt.Errorf("shardbench: timed S=%d: %w", s, err)
			}
			el := time.Since(start)
			if wps := float64(st.Messages) / el.Seconds(); wps > best {
				best = wps
				bestNs = float64(el.Nanoseconds()) / float64(timed)
			}
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		rep.Curve.WiresPerRound = 2 * rep.Curve.M
		rep.Curve.Entries = append(rep.Curve.Entries, ShardBenchEntry{
			Shards:         s,
			GhostNodes:     eng.GhostNodes(),
			BoundaryEdges:  eng.BoundaryEdges(),
			NsPerRound:     bestNs,
			WiresPerSec:    best,
			HeapInuseBytes: ms.HeapInuse,
		})
	}

	big, err := runShardBigRun(quick, solveOut)
	if err != nil {
		return rep, err
	}
	rep.BigRun = big
	return rep, nil
}

// runShardBigRun ingests a streamed power-law graph too large to route
// comfortably unsharded, colors it with DegreeLuby, validates the coloring,
// and optionally dumps the instance+coloring as an ldc-verify document.
func runShardBigRun(quick bool, solveOut string) (ShardBigRun, error) {
	n, k, s := shardBigN, shardBigK, shardBigShards
	if quick {
		n, k, s = 20_000, 3, 4
	}
	es := graph.StreamPreferentialAttachment(n, k, shardBigSeed)
	eng, err := shard.Ingest(es, shard.Options{Shards: s})
	if err != nil {
		return ShardBigRun{}, fmt.Errorf("shardbench: ingest big run: %w", err)
	}
	start := time.Now()
	phi, stats, err := baseline.DegreeLuby(eng, eng, shardLubySeed)
	if err != nil {
		return ShardBigRun{}, fmt.Errorf("shardbench: big run solve: %w", err)
	}
	solve := time.Since(start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	big := ShardBigRun{
		N:              n,
		M:              eng.Edges(),
		MaxDegree:      eng.MaxDegree(),
		Shards:         eng.Shards(),
		Seed:           shardBigSeed,
		Rounds:         stats.Rounds,
		Messages:       stats.Messages,
		Colors:         coloring.CountColors(phi),
		SolveSeconds:   solve.Seconds(),
		HeapInuseBytes: ms.HeapInuse,
		GhostNodes:     eng.GhostNodes(),
		BoundaryEdges:  eng.BoundaryEdges(),
	}
	if solveOut != "" {
		if err := writeShardSolution(solveOut, es, eng.MaxDegree()+1, phi); err != nil {
			return big, err
		}
	}
	return big, nil
}

// writeShardSolution dumps a solved instance as a self-contained ldc-verify
// document (variant "proper"): the edges come from re-streaming the same
// deterministic edge stream the engine ingested.
func writeShardSolution(path string, es graph.EdgeStream, space int, phi coloring.Assignment) error {
	doc := struct {
		N        int      `json:"n"`
		Edges    [][2]int `json:"edges"`
		Space    int      `json:"space"`
		Coloring []int    `json:"coloring"`
		Variant  string   `json:"variant"`
	}{N: es.N(), Space: space, Coloring: phi, Variant: "proper"}
	doc.Edges = make([][2]int, 0, es.N())
	if err := es.ForEachEdge(func(u, v int) error {
		doc.Edges = append(doc.Edges, [2]int{u, v})
		return nil
	}); err != nil {
		return fmt.Errorf("bench: re-stream solution edges: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: solution file: %w", err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(doc); err != nil {
		return fmt.Errorf("bench: encode solution: %w", err)
	}
	return nil
}
