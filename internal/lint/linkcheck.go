package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// mdLink matches inline markdown links and images: [text](target) — the
// capture is the target up to an optional #anchor. Reference-style links
// are rare in this repo and intentionally out of scope.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// BrokenLinks scans the given markdown files for relative link targets
// that do not exist on disk, returning one "file: target" entry per broken
// link. External schemes (http, https, mailto) and pure-anchor links are
// skipped; anchors on relative links are stripped before the existence
// check (heading anchors are not validated).
func BrokenLinks(files []string) ([]string, error) {
	var broken []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		inFence := false
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					broken = append(broken, fmt.Sprintf("%s: %s", file, m[1]))
				}
			}
		}
	}
	sort.Strings(broken)
	return broken, nil
}

// MarkdownFiles walks root and returns every .md file path, skipping .git
// and hidden directories.
func MarkdownFiles(root string) ([]string, error) {
	var files []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if path != root && strings.HasPrefix(info.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			files = append(files, path)
		}
		return nil
	})
	sort.Strings(files)
	return files, err
}
