package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// docCheckedPackages are the packages whose exported identifiers must all
// carry godoc comments. Grow this list as packages reach full coverage;
// the test is the enforcement mechanism (the repo vendors no linter
// binaries).
var docCheckedPackages = []string{
	"../sim",
	"../algkit",
	"../cover",
	"../chaos",
	"../ckpt",
	"../oldc",
	"../fk24",
	"../maus21",
	"../obs",
	"../serve",
	"../shard",
	"../lint",
}

// TestExportedDocComments fails if any exported identifier in the audited
// packages lacks a doc comment.
func TestExportedDocComments(t *testing.T) {
	for _, dir := range docCheckedPackages {
		missing, err := MissingDocs(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, m := range missing {
			t.Errorf("missing doc comment: %s", m)
		}
	}
}

// TestMissingDocsDetects sanity-checks the checker itself against a
// fixture with known gaps, so a silently broken parser can't fake a green
// audit.
func TestMissingDocsDetects(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

// Documented is fine.
type Documented struct{}

type Undocumented struct{}

func Exported() {}

// Method docs attach to the receiver's methods individually.
func (Documented) Good() {}

func (Documented) Bad() {}

func (Undocumented) Skipped() {} // method on documented-or-not type still checked

func unexported() {}
`
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err := MissingDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(missing, "\n")
	for _, want := range []string{"Undocumented", "Exported", "Documented.Bad", "Undocumented.Skipped", "no package comment"} {
		if !strings.Contains(got, want) {
			t.Errorf("checker missed %q in:\n%s", want, got)
		}
	}
	for _, never := range []string{"Documented.Good", "unexported"} {
		if strings.Contains(got, never+" ") || strings.HasSuffix(got, never) {
			t.Errorf("checker flagged documented/unexported %q:\n%s", never, got)
		}
	}
}

// TestRepoMarkdownLinks fails on any relative markdown link in the repo
// whose target file does not exist.
func TestRepoMarkdownLinks(t *testing.T) {
	files, err := MarkdownFiles("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("only %d markdown files found — wrong walk root?", len(files))
	}
	broken, err := BrokenLinks(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range broken {
		t.Errorf("broken link: %s", b)
	}
}

// TestBrokenLinksDetects sanity-checks the link checker against known-bad
// and known-good fixtures.
func TestBrokenLinksDetects(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.md")
	if err := os.WriteFile(good, []byte("see [self](good.md), [web](https://example.com), [anchor](#x), [a](good.md#sec)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.md")
	if err := os.WriteFile(bad, []byte("see [gone](missing.md) and fenced:\n```\n[ignored](nope.md)\n```\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := BrokenLinks([]string{good, bad})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 || !strings.Contains(broken[0], "missing.md") {
		t.Fatalf("broken = %v, want exactly the missing.md link", broken)
	}
}
