// Package lint implements the repository's in-tree style checks: godoc
// comment coverage for exported identifiers (doccheck) and markdown
// relative-link integrity (linkcheck). Both are libraries driven by tests
// in this package, so `go test ./internal/lint` is the whole enforcement
// story — no external linter binaries, which keeps CI hermetic.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// MissingDocs parses the Go package in dir (test files excluded) and
// returns one entry per exported identifier that lacks a doc comment, as
// "file:line: name". It covers package-level types, funcs, vars, consts,
// and exported methods whose receiver type is itself exported; a comment
// on a grouped var/const declaration covers every name in the group, which
// matches how godoc renders them.
func MissingDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv := receiverName(d); recv != "" {
						if !ast.IsExported(recv) {
							continue // method on an unexported type
						}
						report(d.Pos(), recv+"."+d.Name.Name)
					} else {
						report(d.Pos(), d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
						continue
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), s.Name.Name)
							}
						case *ast.ValueSpec:
							if d.Doc != nil {
								continue // group comment covers the block
							}
							for _, name := range s.Names {
								if name.IsExported() && s.Doc == nil && s.Comment == nil {
									report(name.Pos(), name.Name)
								}
							}
						}
					}
				}
			}
		}
		if !hasPkgDoc {
			missing = append(missing, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// receiverName extracts the receiver's type name from a method
// declaration, unwrapping pointers and generic instantiations; it returns
// "" for plain functions.
func receiverName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
