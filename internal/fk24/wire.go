// Package fk24 implements the simpler iterative list defective coloring
// framework of the authors' follow-up paper "Simpler and More General
// Distributed Coloring Based on Simple List Defective Coloring Algorithms"
// (Fuchs–Kuhn, arXiv 2405.04648).
//
// Where the Theorem 1.1 stack (internal/oldc) schedules nodes by γ-classes
// derived from an auxiliary OLDC solve, fk24 runs the *simple* schedule the
// follow-up paper builds everything from: commit nodes bucket by bucket of
// their initial coloring, and let each committing node pick the least
// loaded color of a small candidate set. Concretely, with B buckets
// (bucket(v) = initColor(v) mod B):
//
//	round 1:    broadcast the type (initial color + list); derive the
//	            deterministic candidate family of every same-bucket
//	            neighbor through the shared cover.FamilyCache
//	round 2:    choose the candidate set C_v conflicting with the fewest
//	            same-bucket neighbor families (batched bitset kernels)
//	            and announce it by index
//	round 3+b:  bucket b commits: pick x ∈ C_v minimizing the number of
//	            already-committed neighbor colors plus same-bucket
//	            candidate-set occurrences, and announce it
//
// for B + 2 rounds total. The B knob trades rounds for defect load:
// B = m is the paper's fully sequential one-round step (nodes of equal
// initial color are non-adjacent, so every commit sees all relevant
// neighbors and the pigeonhole bound Σ_x (d_v(x)+1) > deg(v) suffices);
// small B commits many adjacent nodes per round and charges the collisions
// among them to the defect budgets, with the candidate-set
// anti-coordination of round 2 keeping those collisions rare. Solve
// validates the output against the OLDC condition unless SkipValidate is
// set.
//
// All three message kinds have hardened decoders: a corrupted payload
// (sim.CorruptPayload) is re-parsed, validated field by field against the
// shared global parameters, and dropped — reported to the engine's fault
// ledger — when malformed, exactly like internal/oldc's wire layer.
package fk24

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/sim"
)

// typeMsg carries a node's type: its initial color and its color list.
// Receivers re-derive the sender's bucket and candidate family from these
// fields (the Lemma 3.6-style encoding argument: send the type, not the
// astronomically large family).
type typeMsg struct {
	initColor int
	list      []int
	// encoding widths (global knowledge)
	mWidth     int
	spaceSize  int
	colorWidth int
}

// EncodeBits writes the wire form: the initial color followed by the
// cheaper of a characteristic vector or an explicit color list.
func (m typeMsg) EncodeBits(w *bitio.Writer) {
	w.WriteUint(uint64(m.initColor), m.mWidth)
	explicit := 1 + len(m.list)*m.colorWidth
	if m.spaceSize <= explicit {
		w.WriteBit(0)
		w.WriteBitset(m.list, m.spaceSize)
	} else {
		w.WriteBit(1)
		w.WriteVarint(uint64(len(m.list)))
		for _, c := range m.list {
			w.WriteUint(uint64(c), m.colorWidth)
		}
	}
}

// setMsg announces the chosen candidate set as an index into the sender's
// family (receivers re-derive the family from the round-1 type).
type setMsg struct {
	index int
	width int
}

// EncodeBits writes the candidate-set index.
func (m setMsg) EncodeBits(w *bitio.Writer) {
	w.WriteUint(uint64(m.index), m.width)
}

// commitMsg announces a node's final color choice.
type commitMsg struct {
	color int
	width int
}

// EncodeBits writes the committed color.
func (m commitMsg) EncodeBits(w *bitio.Writer) {
	w.WriteUint(uint64(m.color), m.width)
}

var (
	_ sim.Payload = typeMsg{}
	_ sim.Payload = setMsg{}
	_ sim.Payload = commitMsg{}
)

// DecodeError reports a wire payload that failed to parse as the expected
// fk24 message kind: truncated, syntactically malformed, or carrying a
// field outside the range the shared parameters allow.
type DecodeError struct {
	Kind   string // "type", "set", or "commit"
	Reason string // what was wrong
	Err    error  // underlying bitio error, if any
}

// Error describes the malformed message, including the underlying bitio
// error when there is one.
func (e *DecodeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("fk24: bad %s message: %s: %v", e.Kind, e.Reason, e.Err)
	}
	return fmt.Sprintf("fk24: bad %s message: %s", e.Kind, e.Reason)
}

// Unwrap exposes the underlying bitio error for errors.Is/As chains.
func (e *DecodeError) Unwrap() error { return e.Err }

// decodeTypeMsg parses the wire form of a typeMsg given the shared global
// parameters (m, |C|). The returned message is fully validated: initColor
// ∈ [0, m) and a non-empty strictly-ascending color list inside the space.
func decodeTypeMsg(r *bitio.Reader, m, spaceSize int) (typeMsg, error) {
	fail := func(reason string) (typeMsg, error) {
		return typeMsg{}, &DecodeError{Kind: "type", Reason: reason, Err: r.Err()}
	}
	out := typeMsg{
		mWidth:     bitio.WidthFor(m),
		spaceSize:  spaceSize,
		colorWidth: bitio.WidthFor(spaceSize),
	}
	out.initColor = int(r.ReadUint(out.mWidth))
	if r.Err() != nil {
		return fail("truncated header")
	}
	if out.initColor >= m {
		return fail("initial color outside [0, m)")
	}
	if r.ReadBit() == 0 {
		out.list = r.ReadBitset(spaceSize)
		if r.Err() != nil {
			return fail("truncated bitset list")
		}
	} else {
		n := int(r.ReadVarint())
		if r.Err() != nil {
			return fail("truncated list length")
		}
		// A strictly-ascending in-range list has at most |C| entries, and
		// its encoding needs n·colorWidth more bits; checking both bounds
		// work and allocation on hostile input.
		if n > spaceSize || n*out.colorWidth > r.Remaining() {
			return fail("list length exceeds the color space or the payload")
		}
		out.list = make([]int, 0, n)
		for i := 0; i < n; i++ {
			c := int(r.ReadUint(out.colorWidth))
			if c >= spaceSize {
				return fail("list color outside the space")
			}
			if i > 0 && c <= out.list[i-1] {
				return fail("list not strictly ascending")
			}
			out.list = append(out.list, c)
		}
		if r.Err() != nil {
			return fail("truncated list")
		}
	}
	if len(out.list) == 0 {
		return fail("empty color list")
	}
	return out, nil
}

// decodeSetMsg parses the wire form of a setMsg; the index must address
// the k′-set candidate family.
func decodeSetMsg(r *bitio.Reader, kprime int) (setMsg, error) {
	w := bitio.WidthFor(kprime)
	idx := int(r.ReadUint(w))
	if r.Err() != nil {
		return setMsg{}, &DecodeError{Kind: "set", Reason: "truncated", Err: r.Err()}
	}
	if kprime > 0 && idx >= kprime {
		return setMsg{}, &DecodeError{Kind: "set", Reason: "index outside the candidate family"}
	}
	return setMsg{index: idx, width: w}, nil
}

// decodeCommitMsg parses the wire form of a commitMsg; the color must lie
// in the space.
func decodeCommitMsg(r *bitio.Reader, spaceSize int) (commitMsg, error) {
	w := bitio.WidthFor(spaceSize)
	c := int(r.ReadUint(w))
	if r.Err() != nil {
		return commitMsg{}, &DecodeError{Kind: "commit", Reason: "truncated", Err: r.Err()}
	}
	if spaceSize > 0 && c >= spaceSize {
		return commitMsg{}, &DecodeError{Kind: "commit", Reason: "color outside the space"}
	}
	return commitMsg{color: c, width: w}, nil
}

// faultReporter receives detected decode failures; both engines implement
// it (ReportDecodeFault feeds the per-round fault ledger).
type faultReporter interface{ ReportDecodeFault() }

// report forwards a detected decode fault if a sink is installed.
func report(sink faultReporter) {
	if sink != nil {
		sink.ReportDecodeFault()
	}
}

// The as* helpers resolve an inbox payload to the message kind the round
// schedule expects. A clean payload passes through; a corrupted payload is
// re-parsed by the hardened decoder with an exact-consumption check, and a
// failure is reported and skipped — the algorithm treats the wire as
// dropped, which the defective-coloring analysis tolerates.

func asTypeMsg(pay sim.Payload, m, spaceSize int, sink faultReporter) (typeMsg, bool) {
	switch p := pay.(type) {
	case typeMsg:
		return p, true
	case sim.CorruptPayload:
		r := p.Reader()
		msg, err := decodeTypeMsg(r, m, spaceSize)
		if err != nil || r.Remaining() != 0 {
			report(sink)
			return typeMsg{}, false
		}
		return msg, true
	default:
		return typeMsg{}, false
	}
}

func asSetMsg(pay sim.Payload, kprime int, sink faultReporter) (setMsg, bool) {
	switch p := pay.(type) {
	case setMsg:
		return p, true
	case sim.CorruptPayload:
		r := p.Reader()
		msg, err := decodeSetMsg(r, kprime)
		if err != nil || r.Remaining() != 0 {
			report(sink)
			return setMsg{}, false
		}
		return msg, true
	default:
		return setMsg{}, false
	}
}

func asCommitMsg(pay sim.Payload, spaceSize int, sink faultReporter) (commitMsg, bool) {
	switch p := pay.(type) {
	case commitMsg:
		return p, true
	case sim.CorruptPayload:
		r := p.Reader()
		msg, err := decodeCommitMsg(r, spaceSize)
		if err != nil || r.Remaining() != 0 {
			report(sink)
			return commitMsg{}, false
		}
		return msg, true
	default:
		return commitMsg{}, false
	}
}
