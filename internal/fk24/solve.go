package fk24

import (
	"fmt"

	"repro/internal/algkit"
	"repro/internal/bitio"
	"repro/internal/coloring"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Input is an OLDC instance, shaped like oldc.Input: an orientation, the
// color space, per-node lists with per-color defect budgets, and an initial
// m-coloring that seeds the bucket schedule.
type Input struct {
	// O is the arc orientation; defects are counted over out-neighbors.
	O *graph.Oriented
	// SpaceSize is |C|, the size of the global color space.
	SpaceSize int
	// Lists holds each node's color list with per-color defect budgets.
	Lists []coloring.NodeList
	// InitColors is a proper m-coloring (e.g. unique ids) driving buckets.
	InitColors []int
	// M is the size of the initial color space.
	M int
}

// Options controls the framework.
type Options struct {
	// Buckets is the schedule knob B: commits happen over B rounds, bucket
	// b = initColor mod B committing in round 3+b. 0 selects
	// DefaultBuckets; B = M is the paper's fully sequential schedule.
	Buckets int
	// Params is the parameter profile for the candidate families; the zero
	// value selects cover.Practical().
	Params cover.Params
	// SkipValidate disables the output validity check (used by ablations
	// that intentionally under-provision parameters).
	SkipValidate bool
	// NoFamilyCache disables the type-keyed family memoization cache, as
	// in oldc.Options.
	NoFamilyCache bool
}

func resolveParams(opts Options) cover.Params {
	if opts.Params.TauScale == 0 {
		return cover.Practical()
	}
	return opts.Params
}

// DefaultBuckets returns the default schedule width: 2β̂ + 2 buckets
// (capped at m), enough that a node shares each bucket with few neighbors
// in expectation over the initial coloring while keeping the round count
// O(β̂) rather than O(m).
func DefaultBuckets(o *graph.Oriented, m int) int {
	b := 2*algkit.MaxOutDegreePow2(o) + 2
	if m < b {
		b = m
	}
	if b < 1 {
		b = 1
	}
	return b
}

// spec is the resolved static instance the algorithm runs on.
type spec struct {
	o         *graph.Oriented
	spaceSize int
	m         int
	buckets   int
	lists     []coloring.NodeList
	init      []int
	tau       int
	kprime    int
	pr        cover.Params
	noCache   bool
}

// alg is the B+2-round bucketed framework (see the package comment for
// the schedule). Neighbor state is two-sided: commits are counted from all
// neighbors regardless of arc direction — a later-committing node avoiding
// an earlier committer's color is exactly what protects the earlier
// committer's out-defect budget — while the candidate-set anti-coordination
// covers the same-bucket neighbors that commit simultaneously.
type alg struct {
	spec  spec
	sink  faultReporter
	cache *cover.FamilyCache
	csr   algkit.OutCSR

	ownK  []*cover.CachedFamily
	cv    [][]int // chosen candidate set (sorted)
	cvDef [][]int32
	cvIdx []int

	// Same-bucket neighbor state (both directions), per node, in sender
	// order: the round-1 families and the round-2 candidate sets.
	sbFrom [][]int32
	sbFam  [][]*cover.CachedFamily
	sbSet  [][][]int

	// committed[v][j] counts committed neighbor colors equal to cv[v][j].
	committed [][]int32

	phi      []int
	round    int
	started  bool
	finished bool
}

func newAlg(sp spec) (*alg, error) {
	n := sp.o.N()
	a := &alg{
		spec:      sp,
		csr:       algkit.NewOutCSR(sp.o),
		ownK:      make([]*cover.CachedFamily, n),
		cv:        make([][]int, n),
		cvDef:     make([][]int32, n),
		cvIdx:     make([]int, n),
		sbFrom:    make([][]int32, n),
		sbFam:     make([][]*cover.CachedFamily, n),
		sbSet:     make([][][]int, n),
		committed: make([][]int32, n),
		phi:       make([]int, n),
	}
	if !sp.noCache {
		a.cache = cover.NewFamilyCache()
	}
	for v := 0; v < n; v++ {
		if sp.lists[v].Len() == 0 {
			return nil, fmt.Errorf("fk24: node %d has an empty list", v)
		}
		if c := sp.init[v]; c < 0 || c >= sp.m {
			return nil, fmt.Errorf("fk24: node %d initial color %d outside [0,%d)", v, c, sp.m)
		}
		a.ownK[v] = a.familyOf(sp.init[v], sp.lists[v].Colors)
		a.phi[v] = -1
	}
	return a, nil
}

// bucketOf maps an initial color to its commit bucket.
func (a *alg) bucketOf(initColor int) int { return initColor % a.spec.buckets }

// familyOf derives the deterministic candidate family of a type (initial
// color + list). As in oldc, the family is a pure function of the type, so
// senders transmit the type and every receiver re-derives — and the shared
// cache collapses re-derivations to once per distinct type.
func (a *alg) familyOf(initColor int, list []int) *cover.CachedFamily {
	ty := cover.Type{
		InitColor: initColor,
		List:      list,
		SetSize:   a.spec.pr.SetSize(1, a.spec.tau, len(list)),
		NumSets:   a.spec.kprime,
	}
	if a.cache == nil {
		return cover.NewCachedFamily(ty)
	}
	return a.cache.Get(ty)
}

func (a *alg) Outbox(v int, out *sim.Outbox) {
	switch {
	case a.round == 1:
		out.Broadcast(typeMsg{
			initColor:  a.spec.init[v],
			list:       a.spec.lists[v].Colors,
			mWidth:     bitio.WidthFor(a.spec.m),
			spaceSize:  a.spec.spaceSize,
			colorWidth: bitio.WidthFor(a.spec.spaceSize),
		})
	case a.round == 2:
		out.Broadcast(setMsg{index: a.cvIdx[v], width: bitio.WidthFor(a.spec.kprime)})
	default:
		if a.bucketOf(a.spec.init[v]) == a.round-3 {
			a.pickColor(v)
			out.Broadcast(commitMsg{color: a.phi[v], width: bitio.WidthFor(a.spec.spaceSize)})
		}
	}
}

func (a *alg) Inbox(v int, in []sim.Received) {
	switch {
	case a.round == 1:
		myBucket := a.bucketOf(a.spec.init[v])
		for _, msg := range in {
			m, ok := asTypeMsg(msg.Payload, a.spec.m, a.spec.spaceSize, a.sink)
			if !ok {
				continue
			}
			if a.bucketOf(m.initColor) != myBucket {
				continue
			}
			a.sbFrom[v] = append(a.sbFrom[v], int32(msg.From))
			a.sbFam[v] = append(a.sbFam[v], a.familyOf(m.initColor, m.list))
		}
		a.sbSet[v] = make([][]int, len(a.sbFrom[v]))
		sc := algkit.GetScratch()
		a.chooseCv(v, sc)
		algkit.PutScratch(sc)
		a.committed[v] = make([]int32, len(a.cv[v]))
	case a.round == 2:
		i := 0
		sb := a.sbFrom[v]
		for _, msg := range in {
			for i < len(sb) && sb[i] < int32(msg.From) {
				i++
			}
			if i >= len(sb) || sb[i] != int32(msg.From) {
				continue
			}
			m, ok := asSetMsg(msg.Payload, a.spec.kprime, a.sink)
			if !ok {
				continue
			}
			if fam := a.sbFam[v][i]; fam != nil && m.index < len(fam.Sets) {
				a.sbSet[v][i] = fam.Sets[m.index]
			}
		}
	default:
		if a.phi[v] >= 0 {
			return
		}
		for _, msg := range in {
			if m, ok := asCommitMsg(msg.Payload, a.spec.spaceSize, a.sink); ok {
				algkit.CountWindow(a.committed[v], a.cv[v], m.color, 0)
			}
		}
	}
}

// chooseCv picks the candidate set conflicting with the fewest same-bucket
// neighbor families (P1 of the framework), and extracts the defect budgets
// of its colors for the slack-aware commit rule. A node with no same-bucket
// neighbors keeps its full list: the restriction only buys anti-coordination
// against simultaneous committers, and the full list preserves the exact
// sequential pigeonhole guarantee — with B = m every bucket is
// conflict-free, so every node takes this branch and the validity proof of
// the paper's one-round step applies verbatim.
func (a *alg) chooseCv(v int, sc *algkit.Scratch) {
	own := a.ownK[v]
	if len(own.Sets) == 0 || len(a.sbFam[v]) == 0 {
		a.cv[v] = a.spec.lists[v].Colors
		a.cvIdx[v] = 0
	} else {
		d := algkit.Grow32(sc.D, len(own.Sets))
		sc.D = d
		for _, fam := range a.sbFam[v] {
			algkit.AccumulateConflicts(d, &sc.Kernel, own, fam, a.spec.tau, 0)
		}
		best := algkit.ConflictArgmin(d)
		a.cv[v] = own.Sets[best]
		a.cvIdx[v] = best
	}
	// Defects of the candidate colors: cv ⊆ list, both sorted ascending.
	l := a.spec.lists[v]
	defs := make([]int32, len(a.cv[v]))
	j := 0
	for i, x := range a.cv[v] {
		for j < len(l.Colors) && l.Colors[j] < x {
			j++
		}
		if j < len(l.Colors) && l.Colors[j] == x {
			defs[i] = int32(l.Defect[j])
		}
	}
	a.cvDef[v] = defs
}

// pickColor commits node v: among C_v, minimize the collision pressure
// relative to the color's defect budget — committed neighbor occurrences
// plus same-bucket candidate-set occurrences, minus d_v(x). Minimizing the
// slack rather than the raw count matters: a zero-budget color with count
// zero must lose to a big-budget color with a small count. When the
// schedule is fully sequential (B = m) and the instance satisfies the
// pigeonhole condition Σ_x (d_v(x)+1) > deg_out(v), some color has
// count ≤ d_v(x), i.e. minimum slack ≤ 0, and the output is a valid OLDC —
// that is the paper's one-round step. Coarser schedules charge same-bucket
// collisions against the budgets and are validated after the run.
func (a *alg) pickColor(v int) {
	cv := a.cv[v]
	cnt := a.committed[v]
	for _, cu := range a.sbSet[v] {
		if cu != nil {
			algkit.CountMerge(cnt, cv, cu)
		}
	}
	best := 0
	bestSlack := cnt[0] - a.cvDef[v][0]
	for j := 1; j < len(cv); j++ {
		if s := cnt[j] - a.cvDef[v][j]; s < bestSlack {
			bestSlack = s
			best = j
		}
	}
	a.phi[v] = cv[best]
}

func (a *alg) Done() bool {
	if !a.started {
		a.started = true
		a.round = 1
		return false
	}
	a.round++
	if a.round > a.spec.buckets+2 {
		a.finished = true
	}
	return a.finished
}

// MaxRounds returns the round budget Solve grants the schedule: B + 2
// scheduled rounds plus quiesce slack.
func MaxRounds(buckets int) int { return buckets + 4 }

// Solve runs the framework on any Runner (serial or sharded engine) and
// returns the coloring. The output is validated against the OLDC condition
// unless opts.SkipValidate is set.
func Solve(r algkit.Runner, in Input, opts Options) (coloring.Assignment, sim.Stats, error) {
	n := in.O.N()
	if len(in.Lists) != n || len(in.InitColors) != n {
		return nil, sim.Stats{}, fmt.Errorf("fk24: instance shape mismatch: n=%d, %d lists, %d init colors", n, len(in.Lists), len(in.InitColors))
	}
	if in.M < 1 || in.SpaceSize < 1 {
		return nil, sim.Stats{}, fmt.Errorf("fk24: need m ≥ 1 and |C| ≥ 1 (got m=%d, |C|=%d)", in.M, in.SpaceSize)
	}
	pr := resolveParams(opts)
	b := opts.Buckets
	if b <= 0 {
		b = DefaultBuckets(in.O, in.M)
	}
	if b > in.M {
		b = in.M
	}
	tau := pr.Tau(1, in.SpaceSize, in.M)
	sp := spec{
		o:         in.O,
		spaceSize: in.SpaceSize,
		m:         in.M,
		buckets:   b,
		lists:     in.Lists,
		init:      in.InitColors,
		tau:       tau,
		kprime:    pr.KPrime(1, tau),
		pr:        pr,
		noCache:   opts.NoFamilyCache,
	}
	a, err := newAlg(sp)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	a.sink = r
	obs.EmitPhase(r.Tracer(), "fk24/buckets", obs.Attrs{"buckets": b, "tau": tau, "kprime": sp.kprime})
	stats, err := r.Run(a, MaxRounds(b))
	if err != nil {
		return nil, stats, err
	}
	phi := coloring.Assignment(a.phi)
	for v, c := range phi {
		if c < 0 {
			return nil, stats, fmt.Errorf("fk24: node %d left uncolored", v)
		}
	}
	if !opts.SkipValidate {
		if err := coloring.CheckOLDC(in.O, in.Lists, phi); err != nil {
			return nil, stats, fmt.Errorf("fk24: Solve output invalid: %w", err)
		}
	}
	return phi, stats, nil
}
