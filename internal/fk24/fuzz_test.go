package fk24

import (
	"reflect"
	"testing"

	"repro/internal/bitio"
)

// FuzzDecodeFK24TypeMsg drives the hardened type-message decoder with
// arbitrary bit strings: decoding never panics, every accepted message
// satisfies the documented field ranges, and accepted messages
// re-encode/re-decode to the same value.
func FuzzDecodeFK24TypeMsg(f *testing.F) {
	seed := func(m, space int, msg typeMsg) []byte {
		msg.mWidth = bitio.WidthFor(m)
		msg.spaceSize = space
		msg.colorWidth = bitio.WidthFor(space)
		w := bitio.NewWriter()
		msg.EncodeBits(w)
		return w.Bytes()
	}
	f.Add(seed(900, 4096, typeMsg{initColor: 123, list: []int{5, 99, 2047}}), uint16(40), uint16(900), uint16(4096))
	f.Add(seed(64, 32, typeMsg{initColor: 7, list: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}}), uint16(50), uint16(64), uint16(32))
	f.Add([]byte{0xFF, 0x00, 0xAB, 0x13}, uint16(32), uint16(100), uint16(64))
	f.Add([]byte{}, uint16(0), uint16(1), uint16(1))

	f.Fuzz(func(t *testing.T, data []byte, nbitRaw, mRaw, spaceRaw uint16) {
		m := int(mRaw)%(1<<14) + 1
		space := int(spaceRaw)%(1<<12) + 1
		nbit := int(nbitRaw)
		if max := len(data) * 8; nbit > max {
			nbit = max
		}
		r := bitio.NewReader(data, nbit)
		msg, err := decodeTypeMsg(r, m, space)
		if err != nil {
			return
		}
		if msg.initColor < 0 || msg.initColor >= m || len(msg.list) == 0 {
			t.Fatalf("accepted message violates field ranges: %+v", msg)
		}
		for i, c := range msg.list {
			if c < 0 || c >= space || (i > 0 && c <= msg.list[i-1]) {
				t.Fatalf("accepted list invalid at %d: %v", i, msg.list)
			}
		}
		w := bitio.NewWriter()
		msg.EncodeBits(w)
		again, err := decodeTypeMsg(bitio.NewReader(w.Bytes(), w.Len()), m, space)
		if err != nil {
			t.Fatalf("re-encode of accepted message failed to decode: %v", err)
		}
		if again.initColor != msg.initColor || !reflect.DeepEqual(again.list, msg.list) {
			t.Fatalf("decode not idempotent: %+v vs %+v", msg, again)
		}
	})
}

// FuzzDecodeFK24ControlMsgs covers the two fixed-width control messages
// (candidate-set index and commit color) under arbitrary input.
func FuzzDecodeFK24ControlMsgs(f *testing.F) {
	f.Add([]byte{0xD0}, uint16(8), uint16(10), uint16(100))
	f.Add([]byte{0x00, 0x00}, uint16(16), uint16(1), uint16(1))
	f.Add([]byte{0xFF, 0xFF}, uint16(11), uint16(4096), uint16(4096))

	f.Fuzz(func(t *testing.T, data []byte, nbitRaw, kRaw, spaceRaw uint16) {
		kprime := int(kRaw)%(1<<12) + 1
		space := int(spaceRaw)%(1<<12) + 1
		nbit := int(nbitRaw)
		if max := len(data) * 8; nbit > max {
			nbit = max
		}
		if m, err := decodeSetMsg(bitio.NewReader(data, nbit), kprime); err == nil {
			if m.index < 0 || m.index >= kprime {
				t.Fatalf("accepted set index out of range: %+v kprime=%d", m, kprime)
			}
		}
		if m, err := decodeCommitMsg(bitio.NewReader(data, nbit), space); err == nil {
			if m.color < 0 || m.color >= space {
				t.Fatalf("accepted commit color out of range: %+v space=%d", m, space)
			}
		}
	})
}
