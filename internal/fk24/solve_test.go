package fk24

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/sim"
)

type goldenInstance struct {
	name string
	o    *graph.Oriented
	seed int64
}

func goldenInstances() []goldenInstance {
	return []goldenInstance{
		{"regular-48-8", graph.OrientByID(graph.RandomRegular(48, 8, 3)), 11},
		{"gnp-64", graph.OrientByID(graph.GNP(64, 0.15, 5)), 13},
		{"tree-degen", graph.OrientDegeneracy(graph.RandomTree(40, 3)), 17},
	}
}

// prepareInput builds an fk24 instance over o: square-sum lists with
// defect budgets in [1, maxDefect] and node ids as the initial coloring.
func prepareInput(o *graph.Oriented, spaceSize int, kappa float64, maxDefect int, seed int64) Input {
	inst := coloring.SquareSumOrientedRange(o, spaceSize, kappa, 1, maxDefect, seed)
	n := o.N()
	init := make([]int, n)
	for v := range init {
		init[v] = v
	}
	return Input{O: o, SpaceSize: spaceSize, Lists: inst.Lists, InitColors: init, M: n}
}

// digest folds a coloring and its stats into one pinned value.
func digest(phi coloring.Assignment, stats sim.Stats) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v|%+v", []int(phi), stats)
	return h.Sum64()
}

// goldenDigests pins the fk24 output per instance: any change to the
// algorithm's observable behavior (coloring or Stats) must update these
// deliberately.
var goldenDigests = map[string]uint64{
	"regular-48-8": 0x11fe798f3998caad,
	"gnp-64":       0xfeb394199034af54,
	"tree-degen":   0x47ba85e061adde93,
}

// TestGoldenBitIdentity pins Solve to the embedded digests and checks the
// output is bit-identical across engine worker counts, shard counts, and
// the family cache toggle.
func TestGoldenBitIdentity(t *testing.T) {
	for _, tc := range goldenInstances() {
		t.Run(tc.name, func(t *testing.T) {
			in := prepareInput(tc.o, 1<<12, 6.0, 3, tc.seed)
			ref := sim.NewEngine(tc.o.Graph())
			ref.SetWorkers(1)
			wantPhi, wantStats, err := Solve(ref, in, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := digest(wantPhi, wantStats), goldenDigests[tc.name]; got != want {
				t.Errorf("golden digest drifted: got %#x want %#x", got, want)
			}
			for _, workers := range []int{4, 0} {
				for _, noCache := range []bool{false, true} {
					eng := sim.NewEngine(tc.o.Graph())
					if workers > 0 {
						eng.SetWorkers(workers)
					}
					phi, stats, err := Solve(eng, in, Options{NoFamilyCache: noCache})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(wantPhi, phi) {
						t.Errorf("workers=%d noCache=%v: coloring diverges", workers, noCache)
					}
					if !reflect.DeepEqual(wantStats, stats) {
						t.Errorf("workers=%d noCache=%v: stats diverge:\n want %+v\n  got %+v",
							workers, noCache, wantStats, stats)
					}
				}
			}
			for _, shards := range []int{2, 4} {
				eng := shard.FromGraph(tc.o.Graph(), shard.Options{Shards: shards})
				phi, stats, err := Solve(eng, in, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(wantPhi, phi) {
					t.Errorf("shards=%d: coloring diverges from serial", shards)
				}
				if !reflect.DeepEqual(wantStats, stats) {
					t.Errorf("shards=%d: stats diverge from serial:\n want %+v\n  got %+v",
						shards, wantStats, stats)
				}
			}
		})
	}
}

// TestSequentialPigeonhole checks the theorem-backed case: with B = m the
// schedule is fully sequential, and on instances satisfying the pigeonhole
// condition Σ_x (d_v(x)+1) > deg_out(v) (degree+1 lists with defect 0) the
// output must always be a valid OLDC — Solve validates internally.
func TestSequentialPigeonhole(t *testing.T) {
	f := func(nRaw uint8, pRaw uint8, seed int64) bool {
		n := int(nRaw)%50 + 2
		p := 0.05 + float64(pRaw%90)/100
		g := graph.GNP(n, p, seed)
		o := graph.OrientByID(g)
		inst := coloring.DegreePlusOne(g, 4*(g.MaxDegree()+1)+8, seed+1)
		init := make([]int, n)
		for v := range init {
			init[v] = v
		}
		in := Input{O: o, SpaceSize: 4*(g.MaxDegree()+1) + 8, Lists: inst.Lists, InitColors: init, M: n}
		phi, _, err := Solve(sim.NewEngine(g), in, Options{Buckets: n})
		if err != nil {
			t.Logf("n=%d p=%.2f seed=%d: %v", n, p, seed, err)
			return false
		}
		// Defect budgets are all 0 here, so the OLDC is a proper coloring
		// along arcs; re-check the stronger condition explicitly.
		for v := 0; v < n; v++ {
			for _, u := range o.Out(v) {
				if phi[v] == phi[int(u)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultBucketsValidity runs the default (parallel-bucket) schedule on
// random square-sum instances; Solve's internal CheckOLDC is the assertion,
// and the chosen color must come from the node's list.
func TestDefaultBucketsValidity(t *testing.T) {
	f := func(nRaw, dRaw uint8, seed int64) bool {
		n := int(nRaw)%80 + 8
		d := int(dRaw)%6 + 2
		if d >= n {
			d = n - 1
		}
		if n*d%2 != 0 {
			n++
		}
		g := graph.RandomRegular(n, d, seed)
		o := graph.OrientByID(g)
		in := prepareInput(o, 1<<12, 6.0, 4, seed+9)
		phi, _, err := Solve(sim.NewEngine(g), in, Options{})
		if err != nil {
			t.Logf("n=%d d=%d seed=%d: %v", n, d, seed, err)
			return false
		}
		for v := 0; v < n; v++ {
			found := false
			for _, c := range in.Lists[v].Colors {
				if c == phi[v] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAdversarialClique runs the sequential schedule on a clique — every
// commit is visible to every later node, the hardest sharing pattern — with
// uniform lists meeting the pigeonhole condition.
func TestAdversarialClique(t *testing.T) {
	const n = 24
	inst := coloring.CliqueUniform(n, 2, n)
	g := graph.Clique(n)
	o := graph.OrientByID(g)
	init := make([]int, n)
	for v := range init {
		init[v] = v
	}
	in := Input{O: o, SpaceSize: n, Lists: inst.Lists, InitColors: init, M: n}
	if _, _, err := Solve(sim.NewEngine(g), in, Options{Buckets: n}); err != nil {
		t.Fatal(err)
	}
}

// TestInputValidation covers the error paths.
func TestInputValidation(t *testing.T) {
	g := graph.Ring(4)
	o := graph.OrientByID(g)
	base := prepareInput(o, 64, 6.0, 2, 1)

	bad := base
	bad.InitColors = []int{0, 1}
	if _, _, err := Solve(sim.NewEngine(g), bad, Options{}); err == nil {
		t.Error("shape mismatch accepted")
	}

	bad = base
	bad.InitColors = []int{0, 1, 2, 99}
	if _, _, err := Solve(sim.NewEngine(g), bad, Options{}); err == nil {
		t.Error("out-of-range initial color accepted")
	}

	bad = base
	lists := make([]coloring.NodeList, 4)
	copy(lists, base.Lists)
	lists[2] = coloring.NodeList{}
	bad.Lists = lists
	if _, _, err := Solve(sim.NewEngine(g), bad, Options{}); err == nil {
		t.Error("empty list accepted")
	}
}
