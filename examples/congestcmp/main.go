// congestcmp: a (Δ+1)-coloring algorithm shoot-out. For a degree sweep it
// runs the paper's Theorem 1.4 pipeline against the deterministic
// O(Δ + log* n) and O(Δ² + log* n) baselines and randomized Luby, printing
// rounds and message sizes — the Δ ∈ [ω(log n), o(log² n)] discussion of
// the paper, measured.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/baseline"
	"repro/internal/coloring"
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/sim"
)

func main() {
	maxDelta := flag.Int("maxdelta", 32, "largest degree in the sweep")
	nodesPerDelta := flag.Int("nodes", 8, "graph size multiplier (n = multiplier·Δ)")
	flag.Parse()

	fmt.Printf("%5s %6s %10s %12s %12s %12s %10s %9s\n",
		"Δ", "n", "ours", "ours/√Δ", "linear", "slow", "luby", "max bits")
	for delta := 4; delta <= *maxDelta; delta *= 2 {
		n := *nodesPerDelta * delta
		if n*delta%2 != 0 {
			n++
		}
		g := graph.RandomRegular(n, delta, int64(delta))

		ours, err := congest.DeltaPlusOne(g, congest.Config{})
		if err != nil {
			log.Fatalf("Δ=%d: %v", delta, err)
		}
		if err := coloring.CheckProper(g, ours.Phi, delta+1); err != nil {
			log.Fatal(err)
		}
		_, lin, err := baseline.LinearDeltaPlusOne(sim.NewEngine(g), g)
		if err != nil {
			log.Fatal(err)
		}
		_, slow, err := baseline.SlowFold(sim.NewEngine(g), g)
		if err != nil {
			log.Fatal(err)
		}
		_, luby, err := baseline.Luby(sim.NewEngine(g), g, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d %6d %10d %12.2f %12d %12d %10d %9d\n",
			delta, n, ours.Stats.Rounds,
			float64(ours.Stats.Rounds)/math.Sqrt(float64(delta)),
			lin.Rounds, slow.Rounds, luby.Rounds, ours.Stats.MaxMessageBits)
	}
	fmt.Println("\nshape check: 'ours' should grow ∝√Δ·polylog, 'linear' ∝Δ, 'slow' ∝Δ².")
}
