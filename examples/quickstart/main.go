// Quickstart: solve an oriented list defective coloring instance with the
// paper's Theorem 1.1 algorithm, then color the same network with Δ+1
// colors through the full Theorem 1.4 CONGEST pipeline.
package main

import (
	"fmt"
	"log"

	"repro/internal/coloring"
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/oldc"
	"repro/internal/sim"
)

func main() {
	// A 64-node 8-regular network, edges oriented toward smaller ids.
	g := graph.RandomRegular(64, 8, 1)
	o := graph.OrientByID(g)
	fmt.Printf("network: n=%d, m=%d, Δ=%d, β=%d\n", g.N(), g.M(), g.MaxDegree(), o.MaxOutDegree())

	// Step 1: bootstrap a proper O(Δ²)-coloring in O(log* n) rounds.
	eng := sim.NewEngine(g)
	init, m, bootStats, err := linial.Proper(eng, graph.OrientSymmetric(g), linial.IDs(g.N()), g.N())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Linial bootstrap: %d colors in %d rounds\n", m, bootStats.Rounds)

	// Step 2: an OLDC instance — every node gets a random color list whose
	// (defect+1)² mass dominates β² (the Theorem 1.1 condition).
	inst := coloring.SquareSumOriented(o, 4096, 5.0, 3, 42)
	in := oldc.Input{O: o, SpaceSize: 4096, Lists: inst.Lists, InitColors: init, M: m}
	phi, stats, err := oldc.Solve(eng, in, oldc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OLDC (Theorem 1.1): solved in %d rounds, max message %d bits\n",
		stats.Rounds, stats.MaxMessageBits)
	if err := coloring.CheckOLDC(o, in.Lists, phi); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  validated: every node has at most d_v(φ(v)) same-colored out-neighbors\n")

	// Step 3: the full (Δ+1)-coloring pipeline (Theorem 1.4).
	res, err := congest.DeltaPlusOne(g, congest.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := coloring.CheckProper(g, res.Phi, g.MaxDegree()+1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(Δ+1)-coloring (Theorem 1.4): %d colors in %d rounds, max message %d bits\n",
		coloring.CountColors(res.Phi), res.Stats.Rounds, res.Stats.MaxMessageBits)
}
