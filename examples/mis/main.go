// Maximal independent set via coloring — the canonical application of
// distributed coloring. A (Δ+1)-coloring from the paper's Theorem 1.4
// pipeline is converted into an MIS by letting one color class join per
// round; the example compares the deterministic route against Luby's
// randomized MIS on the same sensor-network-style topology.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/sim"
)

func main() {
	// A sensor field: random geometric graph in the unit square.
	g, _ := graph.RandomGeometric(150, 0.12, 5)
	comps, _ := g.Components()
	fmt.Printf("sensor field: %d nodes, %d links, Δ=%d, %d components\n",
		g.N(), g.M(), g.MaxDegree(), comps)

	det, detStats, err := mis.Deterministic(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic MIS (Thm 1.4 coloring + class sweep): size %d in %d rounds\n",
		count(det), detStats.Rounds)

	rnd, rndStats, err := mis.Luby(sim.NewEngine(g), g, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Luby randomized MIS:                               size %d in %d rounds\n",
		count(rnd), rndStats.Rounds)

	// Both are maximal independent sets — the cluster-head property: every
	// node is a head or hears one.
	for _, set := range [][]bool{det, rnd} {
		if err := mis.Check(g, set); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("both verified: every sensor is a cluster head or adjacent to one")
}

func count(set []bool) int {
	c := 0
	for _, s := range set {
		if s {
			c++
		}
	}
	return c
}
