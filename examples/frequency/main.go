// Frequency assignment: cell towers in the plane must pick radio channels.
// Towers within interference range form the conflict graph. Each tower has
// a list of licensed channels; cheap channels tolerate a few co-channel
// interferers (they run at lower power), premium channels tolerate none.
// That is *exactly* a list defective coloring instance (Definition 1.1 of
// the paper), and the Theorem 1.3/1.4 machinery assigns channels
// distributedly.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/coloring"
	"repro/internal/congest"
	"repro/internal/graph"
)

const (
	numTowers   = 120
	rangeRadius = 0.14
	channels    = 48 // licensed spectrum: channels 0..47
	premium     = 16 // channels 0..15 are interference-free premium
)

func main() {
	g, pts := graph.RandomGeometric(numTowers, rangeRadius, 7)
	fmt.Printf("towers: %d, interference links: %d, max interferers: %d\n",
		g.N(), g.M(), g.MaxDegree())

	// Build the licensing lists: every tower gets enough channel weight to
	// satisfy Σ(d_v(x)+1) > deg(v) — premium channels count 1, cheap
	// channels (defect 2) count 3.
	rng := rand.New(rand.NewSource(99))
	in := &coloring.Instance{G: g, SpaceSize: channels, Lists: make([]coloring.NodeList, g.N())}
	for v := 0; v < g.N(); v++ {
		need := g.Degree(v) + 1
		var cols, defs []int
		seen := map[int]bool{}
		weight := 0
		for weight < need {
			c := rng.Intn(channels)
			if seen[c] {
				continue
			}
			seen[c] = true
			cols = append(cols, c)
			if c < premium {
				defs = append(defs, 0)
				weight++
			} else {
				defs = append(defs, 2)
				weight += 3
			}
		}
		sortPairs(cols, defs)
		in.Lists[v] = coloring.NodeList{Colors: cols, Defect: defs}
	}
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}

	res, err := congest.DegreePlusOneList(g, in, congest.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assignment computed in %d simulated rounds (max message %d bits)\n",
		res.Stats.Rounds, res.Stats.MaxMessageBits)

	// Report spectrum usage and interference.
	usage := map[int]int{}
	interfered := 0
	for v := 0; v < g.N(); v++ {
		usage[res.Phi[v]]++
		for _, u := range g.Neighbors(v) {
			if res.Phi[u] == res.Phi[v] {
				interfered++
				break
			}
		}
	}
	fmt.Printf("channels used: %d/%d, towers sharing a channel with a neighbor: %d\n",
		len(usage), channels, interfered)
	for v := 0; v < 5; v++ {
		d, _ := in.Lists[v].DefectOf(res.Phi[v])
		kind := "premium"
		if res.Phi[v] >= premium {
			kind = "cheap"
		}
		fmt.Printf("  tower %2d at (%.2f, %.2f): channel %2d (%s, tolerates %d interferers)\n",
			v, pts[v][0], pts[v][1], res.Phi[v], kind, d)
	}
}

func sortPairs(cols, defs []int) {
	idx := make([]int, len(cols))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cols[idx[a]] < cols[idx[b]] })
	nc := make([]int, len(cols))
	nd := make([]int, len(defs))
	for i, j := range idx {
		nc[i], nd[i] = cols[j], defs[j]
	}
	copy(cols, nc)
	copy(defs, nd)
}
