// Edge coloring via line graphs: a proper vertex coloring of the line
// graph L(G) is a proper edge coloring of G. The paper's discussion of
// color space reduction highlights line graphs (bounded neighborhood
// independence) as the family where these techniques shine; this example
// computes a (2Δ−1)-edge-coloring of a switch fabric by running the
// Theorem 1.4 pipeline on L(G), then verifies that the color classes are
// matchings (i.e. valid communication rounds for a crossbar schedule).
package main

import (
	"fmt"
	"log"

	"repro/internal/coloring"
	"repro/internal/congest"
	"repro/internal/graph"
)

func main() {
	// A 32-port switch fabric with random 5-regular wiring.
	g := graph.RandomRegular(32, 5, 123)
	lg, edges := g.LineGraph()
	fmt.Printf("fabric: %d ports, %d links; line graph: %d vertices, Δ(L)=%d\n",
		g.N(), g.M(), lg.N(), lg.MaxDegree())

	res, err := congest.DeltaPlusOne(lg, congest.Config{})
	if err != nil {
		log.Fatal(err)
	}
	palette := lg.MaxDegree() + 1 // ≤ 2Δ(G) − 1
	if err := coloring.CheckProper(lg, res.Phi, palette); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge coloring: %d colors (palette %d ≤ 2Δ−1 = %d) in %d simulated rounds\n",
		coloring.CountColors(res.Phi), palette, 2*g.MaxDegree()-1, res.Stats.Rounds)

	// Every color class must be a matching: no two same-colored links share
	// a port.
	classes := map[int][][2]int{}
	for e, c := range res.Phi {
		classes[c] = append(classes[c], edges[e])
	}
	for c, links := range classes {
		seen := map[int]bool{}
		for _, l := range links {
			if seen[l[0]] || seen[l[1]] {
				log.Fatalf("color %d is not a matching", c)
			}
			seen[l[0]], seen[l[1]] = true, true
		}
	}
	fmt.Printf("all %d color classes verified as matchings — a %d-round crossbar schedule\n",
		len(classes), len(classes))
	// Show the first schedule slot.
	first := classes[res.Phi[0]]
	fmt.Printf("slot for color %d connects %d port pairs, e.g. %v\n", res.Phi[0], len(first), first[0])
}
