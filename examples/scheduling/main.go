// Exam scheduling: courses that share students conflict and should sit in
// different time slots. Morning slots must be conflict-free; evening slots
// have proctored overflow rooms and tolerate up to two conflicts. Each
// course also has its own list of feasible slots (lecturer availability).
// This is a list defective coloring instance; the example solves it both
// with the sequential Lemma A.1 algorithm (the existence proof) and with
// the distributed pipeline, and cross-checks the two.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/coloring"
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/seq"
)

const (
	numCourses   = 90
	numStudents  = 400
	perStudent   = 3
	morningSlots = 10 // slots 0..9: conflict-free
	eveningSlots = 8  // slots 10..17: tolerate 2 conflicts
	totalSlots   = morningSlots + eveningSlots
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	// Conflict graph: courses sharing at least one student.
	enrolled := make([][]int, numStudents)
	for s := range enrolled {
		seen := map[int]bool{}
		for len(seen) < perStudent {
			seen[rng.Intn(numCourses)] = true
		}
		for c := range seen {
			enrolled[s] = append(enrolled[s], c)
		}
	}
	b := graph.NewBuilder(numCourses)
	pair := map[[2]int]bool{}
	for _, cs := range enrolled {
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				u, v := cs[i], cs[j]
				if u > v {
					u, v = v, u
				}
				if u != v && !pair[[2]int{u, v}] {
					pair[[2]int{u, v}] = true
					b.AddEdge(u, v)
				}
			}
		}
	}
	g := b.Build()
	fmt.Printf("courses: %d, conflicts: %d, max conflicting courses: %d\n",
		g.N(), g.M(), g.MaxDegree())

	// Slot lists: sample slots until Σ(d+1) > #conflicts (morning slots
	// weigh 1, evening slots weigh 3).
	in := &coloring.Instance{G: g, SpaceSize: totalSlots, Lists: make([]coloring.NodeList, g.N())}
	for v := 0; v < g.N(); v++ {
		need := g.Degree(v) + 1
		var cols, defs []int
		seen := map[int]bool{}
		weight := 0
		for weight < need && len(seen) < totalSlots {
			s := rng.Intn(totalSlots)
			if seen[s] {
				continue
			}
			seen[s] = true
			cols = append(cols, s)
			if s < morningSlots {
				defs = append(defs, 0)
				weight++
			} else {
				defs = append(defs, 2)
				weight += 3
			}
		}
		if weight <= g.Degree(v) {
			// Dense course: full slot palette, with evening tolerance
			// raised until Σ(d+1) > deg (more overflow rooms booked).
			evening := (g.Degree(v)+1-morningSlots+eveningSlots-1)/eveningSlots - 1
			if evening < 2 {
				evening = 2
			}
			cols = cols[:0]
			defs = defs[:0]
			for s := 0; s < totalSlots; s++ {
				cols = append(cols, s)
				if s < morningSlots {
					defs = append(defs, 0)
				} else {
					defs = append(defs, evening)
				}
			}
		}
		sortPairs(cols, defs)
		in.Lists[v] = coloring.NodeList{Colors: cols, Defect: defs}
	}
	if !coloring.CondExistsLDC(in) {
		log.Fatal("instance violates condition (1); increase slots")
	}

	// Sequential solution (Lemma A.1).
	seqPhi, err := seq.ListDefective(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential (Lemma A.1): valid schedule with %d distinct slots\n",
		coloring.CountColors(seqPhi))

	// Distributed solution.
	res, err := congest.DegreePlusOneList(g, in, congest.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed (Thm 1.3/1.4 pipeline): %d rounds, %d distinct slots\n",
		res.Stats.Rounds, coloring.CountColors(res.Phi))

	// Report per-slot load of the distributed schedule.
	load := make([]int, totalSlots)
	overflow := 0
	for v := 0; v < g.N(); v++ {
		load[res.Phi[v]]++
		for _, u := range g.Neighbors(v) {
			if res.Phi[u] == res.Phi[v] {
				overflow++
				break
			}
		}
	}
	fmt.Printf("courses needing an overflow room: %d (allowed only in evening slots)\n", overflow)
	fmt.Print("slot load:")
	for s, l := range load {
		if s == morningSlots {
			fmt.Print(" |")
		}
		fmt.Printf(" %d", l)
	}
	fmt.Println(" (morning | evening)")
}

func sortPairs(cols, defs []int) {
	idx := make([]int, len(cols))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cols[idx[a]] < cols[idx[b]] })
	nc := make([]int, len(cols))
	nd := make([]int, len(defs))
	for i, j := range idx {
		nc[i], nd[i] = cols[j], defs[j]
	}
	copy(cols, nc)
	copy(defs, nd)
}
