// Root benchmarks: one per experiment of DESIGN.md §4. `go test -bench=.`
// regenerates every table the reproduction reports (in quick mode; the
// ldc-bench CLI runs the full sweeps).
package main

import (
	"io"
	"testing"

	"repro/internal/bench"
)

func runExperiment(b *testing.B, run func() (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t.Render(io.Discard)
			b.ReportMetric(float64(len(t.Rows)), "rows")
		}
	}
}

func BenchmarkE1_OLDCRounds(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E1)
}

func BenchmarkE2_OLDCMessageBits(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E2)
}

func BenchmarkE3_CSRMessageSize(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E3)
}

func BenchmarkE4_CSRTime(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E4)
}

func BenchmarkE5_Arbdefective(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E5)
}

func BenchmarkE6_CongestDelta1(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E6)
}

func BenchmarkE7_ExistenceLDC(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E7)
}

func BenchmarkE8_ExistenceArb(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E8)
}

func BenchmarkE9_Linial(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E9)
}

func BenchmarkE10_Ablations(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E10)
}

func BenchmarkE11_NScaling(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E11)
}

func BenchmarkE12_InternalComputation(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E12)
}

func BenchmarkE13_EdgeColoring(b *testing.B) {
	runExperiment(b, bench.Suite{Quick: true}.E13)
}
